"""Fig 6: degree-counting scaling under the four routing schemes.

Paper setup (scaled down -- see DESIGN.md):

* weak scaling (6a): 2^28 vertices and 2^32 edges **per node**, mailbox
  2^18.  We keep per-node work fixed (``edges_per_rank`` constant) and
  sweep node counts.
* strong scaling (6b): 2^32 vertices, 2^37 edges total.
* edges sampled uniformly (Erdős–Rényi) -- balanced communication, no
  broadcasts needed.

Expected shape: NoRoute falls over past a few nodes; NodeLocal and
NodeRemote track each other (uniform traffic) and beat NLNR at small N
(extra local hop); NLNR scales furthest.

Every ``(nodes, scheme)`` cell is an independent simulation, expressed
as a module-level cell function (:func:`weak_cell` / :func:`strong_cell`)
that rebuilds its workload from scalar kwargs; the drivers submit cells
through :mod:`repro.exec` and aggregate in deterministic sweep order,
so ``--jobs N`` output is byte-identical to serial.
"""

from __future__ import annotations

from typing import Optional

from ..apps import make_degree_counting
from ..exec import Job, Pool, run_jobs
from ..graph import er_stream
from ..machine import bench_machine
from .harness import SweepConfig, efficiency, run_ygm, schemes_for
from .report import Table


def weak_cell(
    *,
    nodes: int,
    scheme: str,
    cores_per_node: int,
    mailbox_capacity: int,
    edges_per_rank: int,
    verts_per_rank: int,
    batch_size: int,
    seed: int,
    pdes_workers: int = 0,
) -> dict:
    """One (nodes, scheme) cell of Fig 6a, rebuilt from scalars."""
    nranks = nodes * cores_per_node
    stream = er_stream(
        num_vertices=verts_per_rank * nranks,
        edges_per_rank=edges_per_rank,
        seed=seed,
    )
    res = run_ygm(
        make_degree_counting(stream, batch_size=batch_size),
        bench_machine(nodes, cores_per_node=cores_per_node),
        scheme,
        mailbox_capacity,
        seed=seed,
        pdes_workers=pdes_workers or None,
    )
    return {
        "seconds": res.elapsed,
        "avg_remote_pkt_B": res.mailbox_stats.avg_remote_packet_bytes,
    }


def strong_cell(
    *,
    nodes: int,
    scheme: str,
    cores_per_node: int,
    mailbox_capacity: int,
    total_edges: int,
    total_verts: int,
    batch_size: int,
    seed: int,
    pdes_workers: int = 0,
) -> dict:
    """One (nodes, scheme) cell of Fig 6b."""
    nranks = nodes * cores_per_node
    stream = er_stream(
        num_vertices=total_verts,
        edges_per_rank=max(1, total_edges // nranks),
        seed=seed,
    )
    res = run_ygm(
        make_degree_counting(stream, batch_size=batch_size),
        bench_machine(nodes, cores_per_node=cores_per_node),
        scheme,
        mailbox_capacity,
        seed=seed,
        pdes_workers=pdes_workers or None,
    )
    return {"seconds": res.elapsed}


def _grid(sweep: SweepConfig):
    for nodes in sweep.node_counts:
        for scheme in schemes_for(nodes, sweep.cores_per_node):
            yield nodes, scheme


def run_weak(
    sweep: Optional[SweepConfig] = None,
    edges_per_rank: int = 2**12,
    verts_per_rank: int = 2**10,
    batch_size: int = 2**12,
    pool: Optional[Pool] = None,
    pdes_workers: int = 0,
) -> Table:
    sweep = sweep or SweepConfig.quick()
    table = Table(
        title="Fig 6a: degree counting, weak scaling "
        f"({edges_per_rank} edges/rank, {verts_per_rank} vertices/rank, "
        f"C={sweep.cores_per_node}, mailbox {sweep.mailbox_capacity})",
        columns=["nodes", "scheme", "seconds", "efficiency", "avg_remote_pkt_B"],
    )
    grid = list(_grid(sweep))
    cells = run_jobs(
        [
            Job(
                fn="repro.bench.fig6:weak_cell",
                kwargs=dict(
                    nodes=nodes,
                    scheme=scheme,
                    cores_per_node=sweep.cores_per_node,
                    mailbox_capacity=sweep.mailbox_capacity,
                    edges_per_rank=edges_per_rank,
                    verts_per_rank=verts_per_rank,
                    batch_size=batch_size,
                    seed=sweep.seed,
                    pdes_workers=pdes_workers,
                ),
                label=f"fig6a N={nodes} {scheme}",
            )
            for nodes, scheme in grid
        ],
        pool,
    )
    base: dict = {}
    for (nodes, scheme), cell in zip(grid, cells):
        base.setdefault(scheme, (cell["seconds"], nodes))
        b_el, b_n = base[scheme]
        table.add(
            nodes=nodes,
            scheme=scheme,
            seconds=cell["seconds"],
            efficiency=efficiency(b_el, b_n, cell["seconds"], nodes, weak=True),
            avg_remote_pkt_B=cell["avg_remote_pkt_B"],
        )
    return table


def run_strong(
    sweep: Optional[SweepConfig] = None,
    total_edges: int = 2**17,
    total_verts: int = 2**14,
    batch_size: int = 2**12,
    pool: Optional[Pool] = None,
    pdes_workers: int = 0,
) -> Table:
    sweep = sweep or SweepConfig.quick()
    table = Table(
        title="Fig 6b: degree counting, strong scaling "
        f"({total_edges} edges, {total_verts} vertices total, "
        f"C={sweep.cores_per_node}, mailbox {sweep.mailbox_capacity})",
        columns=["nodes", "scheme", "seconds", "efficiency"],
    )
    grid = list(_grid(sweep))
    cells = run_jobs(
        [
            Job(
                fn="repro.bench.fig6:strong_cell",
                kwargs=dict(
                    nodes=nodes,
                    scheme=scheme,
                    cores_per_node=sweep.cores_per_node,
                    mailbox_capacity=sweep.mailbox_capacity,
                    total_edges=total_edges,
                    total_verts=total_verts,
                    batch_size=batch_size,
                    seed=sweep.seed,
                    pdes_workers=pdes_workers,
                ),
                label=f"fig6b N={nodes} {scheme}",
            )
            for nodes, scheme in grid
        ],
        pool,
    )
    base: dict = {}
    for (nodes, scheme), cell in zip(grid, cells):
        base.setdefault(scheme, (cell["seconds"], nodes))
        b_el, b_n = base[scheme]
        table.add(
            nodes=nodes,
            scheme=scheme,
            seconds=cell["seconds"],
            efficiency=efficiency(b_el, b_n, cell["seconds"], nodes, weak=False),
        )
    return table
