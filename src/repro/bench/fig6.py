"""Fig 6: degree-counting scaling under the four routing schemes.

Paper setup (scaled down -- see DESIGN.md):

* weak scaling (6a): 2^28 vertices and 2^32 edges **per node**, mailbox
  2^18.  We keep per-node work fixed (``edges_per_rank`` constant) and
  sweep node counts.
* strong scaling (6b): 2^32 vertices, 2^37 edges total.
* edges sampled uniformly (Erdős–Rényi) -- balanced communication, no
  broadcasts needed.

Expected shape: NoRoute falls over past a few nodes; NodeLocal and
NodeRemote track each other (uniform traffic) and beat NLNR at small N
(extra local hop); NLNR scales furthest.
"""

from __future__ import annotations

from typing import Optional

from ..apps import make_degree_counting
from ..graph import er_stream
from .harness import SweepConfig, efficiency, run_ygm, schemes_for
from .report import Table


def run_weak(
    sweep: Optional[SweepConfig] = None,
    edges_per_rank: int = 2**12,
    verts_per_rank: int = 2**10,
    batch_size: int = 2**12,
) -> Table:
    sweep = sweep or SweepConfig.quick()
    table = Table(
        title="Fig 6a: degree counting, weak scaling "
        f"({edges_per_rank} edges/rank, {verts_per_rank} vertices/rank, "
        f"C={sweep.cores_per_node}, mailbox {sweep.mailbox_capacity})",
        columns=["nodes", "scheme", "seconds", "efficiency", "avg_remote_pkt_B"],
    )
    base: dict = {}
    for nodes in sweep.node_counts:
        nranks = nodes * sweep.cores_per_node
        stream = er_stream(
            num_vertices=verts_per_rank * nranks,
            edges_per_rank=edges_per_rank,
            seed=sweep.seed,
        )
        for scheme in schemes_for(nodes, sweep.cores_per_node):
            res = run_ygm(
                make_degree_counting(stream, batch_size=batch_size),
                sweep.machine(nodes),
                scheme,
                sweep.mailbox_capacity,
                seed=sweep.seed,
            )
            base.setdefault(scheme, (res.elapsed, nodes))
            b_el, b_n = base[scheme]
            table.add(
                nodes=nodes,
                scheme=scheme,
                seconds=res.elapsed,
                efficiency=efficiency(b_el, b_n, res.elapsed, nodes, weak=True),
                avg_remote_pkt_B=res.mailbox_stats.avg_remote_packet_bytes,
            )
    return table


def run_strong(
    sweep: Optional[SweepConfig] = None,
    total_edges: int = 2**17,
    total_verts: int = 2**14,
    batch_size: int = 2**12,
) -> Table:
    sweep = sweep or SweepConfig.quick()
    table = Table(
        title="Fig 6b: degree counting, strong scaling "
        f"({total_edges} edges, {total_verts} vertices total, "
        f"C={sweep.cores_per_node}, mailbox {sweep.mailbox_capacity})",
        columns=["nodes", "scheme", "seconds", "efficiency"],
    )
    base: dict = {}
    for nodes in sweep.node_counts:
        nranks = nodes * sweep.cores_per_node
        stream = er_stream(
            num_vertices=total_verts,
            edges_per_rank=max(1, total_edges // nranks),
            seed=sweep.seed,
        )
        for scheme in schemes_for(nodes, sweep.cores_per_node):
            res = run_ygm(
                make_degree_counting(stream, batch_size=batch_size),
                sweep.machine(nodes),
                scheme,
                sweep.mailbox_capacity,
                seed=sweep.seed,
            )
            base.setdefault(scheme, (res.elapsed, nodes))
            b_el, b_n = base[scheme]
            table.add(
                nodes=nodes,
                scheme=scheme,
                seconds=res.elapsed,
                efficiency=efficiency(b_el, b_n, res.elapsed, nodes, weak=False),
            )
    return table
