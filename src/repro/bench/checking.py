"""``python -m repro.bench --check``: the correctness-harness mode.

Runs the active pillars of :mod:`repro.check` and prints their
reports:

1. the routing-differential oracle (every app under every routing
   scheme, invariant-checked, against sequential references),
2. the same oracle at tiny scale with in-network combining enabled
   (bit-exact algebras must stay cross-scheme bit-identical; combined
   SpMV is tolerance-verified), and
3. a schedule-fuzz campaign over the canonical mixed-traffic quiescence
   scenario (perturbed same-timestamp interleavings, invariants plus
   baseline-equality asserted per run).

Both pillars fan out through the job pool when one is supplied
(``--jobs N``): the oracle's 60 configs run as independent cells, the
fuzzer shards its seed range across workers.  Results are merged in
deterministic order, so the verdicts match a serial run exactly.

Returns a process exit code: 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

from typing import Optional, Sequence


def run_check(
    seed: int = 0,
    fuzz_runs: int = 50,
    apps: Optional[Sequence[str]] = None,
    scales: Optional[Sequence[str]] = None,
    pool=None,
    pdes_workers: int = 0,
) -> int:
    from ..check import fuzz_schedules_sharded, run_oracle

    ok = True

    report = run_oracle(
        apps=apps,
        scales=scales,
        seed=seed,
        pool=pool,
        pdes_workers=pdes_workers,
    )
    print(report.render())
    ok &= report.ok

    print()
    print("with in-network combining (tiny scale):")
    combined = run_oracle(
        apps=apps,
        scales=["tiny"] if scales is None else scales,
        seed=seed,
        pool=pool,
        pdes_workers=pdes_workers,
        combining=True,
    )
    print(combined.render())
    ok &= combined.ok

    print()
    fuzz = fuzz_schedules_sharded(
        runs=fuzz_runs, seed=seed, scenario={"seed": seed}, pool=pool
    )
    print(fuzz.render())
    ok &= fuzz.ok

    return 0 if ok else 1
