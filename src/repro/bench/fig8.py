"""Fig 8: SpMV scaling -- YGM (with/without delegates) vs CombBLAS-style 2D.

Paper setup (scaled down):

* 8a: weak scaling on skewed RMAT (0.57/0.19/0.19/0.05), 2^24 verts/node,
  edge factor 16, YGM uses delegates; CombBLAS comparator.
* 8b: delegate-count growth across the 8a sweep.
* 8c: same but uniform RMAT (0.25^4) and *no* delegates.
* 8d: strong scaling on the WDC 2012 webgraph (3.5B vertices).  The real
  trace is unavailable, so we substitute a synthetic scale-free
  "webgraph-like" RMAT at reduced scale (see DESIGN.md); the paper's key
  observation -- the mailbox size must scale with N or coalescing starves
  -- is reproduced by sweeping both fixed and N-scaled mailboxes.

Each cell (:func:`ygm_cell` / :func:`combblas_cell`) regenerates the
sparse problem from its seeded RNG parameters inside the worker --
problems are pure functions of ``(scale, edge_factor, params, seed)``
-- and returns scalar stats, so cells parallelize and cache through
:mod:`repro.exec` with byte-identical aggregation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import make_combblas_spmv, partition_combblas_problem
from ..exec import Job, Pool, run_jobs
from ..graph import (
    GRAPH500_PARAMS,
    UNIFORM_PARAMS,
    build_delegates,
    rmat_edges,
    scaled_delegate_threshold,
)
from ..graph.delegates import DelegateSet
from ..linalg import make_spmv, partition_spmv_problem
from ..machine import bench_machine
from .harness import SweepConfig, run_mpi, run_ygm, schemes_for
from .report import Table


def _make_problem(scale: int, edge_factor: int, params, seed: int):
    n = 1 << scale
    nnz = edge_factor * n
    rng = np.random.default_rng(seed)
    rows, cols = rmat_edges(scale, nnz, rng, params=tuple(params))
    vals = rng.standard_normal(nnz)
    x = rng.standard_normal(n)
    return n, rows, cols, vals, x


def _build_problem_delegates(
    scale: int,
    edge_factor: int,
    params: Sequence[float],
    seed: int,
    delegate_mode: str,
    delegate_fraction: float,
):
    """Problem + delegate set from scalars (shared by the YGM cells).

    ``delegate_mode``: ``"scaled"`` uses the Section VI-B threshold,
    ``"none"`` runs without delegates (Fig 8c).
    """
    n, rows, cols, vals, x = _make_problem(scale, edge_factor, params, seed)
    if delegate_mode == "scaled":
        threshold = scaled_delegate_threshold(
            scale, len(rows), params[0], params[1], fraction=delegate_fraction
        )
        delegates = build_delegates(rows, cols, n, threshold)
    else:
        delegates = DelegateSet(np.empty(0, dtype=np.int64))
    return n, rows, cols, vals, x, delegates


def ygm_cell(
    *,
    nodes: int,
    scheme: str,
    cores_per_node: int,
    capacity: int,
    scale: int,
    edge_factor: int,
    params: Sequence[float],
    delegate_mode: str,
    delegate_fraction: float,
    seed: int,
    pdes_workers: int = 0,
) -> dict:
    """One YGM SpMV cell (all three panels)."""
    nranks = nodes * cores_per_node
    n, rows, cols, vals, x, delegates = _build_problem_delegates(
        scale, edge_factor, params, seed, delegate_mode, delegate_fraction
    )
    problems = [
        partition_spmv_problem(r, nranks, n, rows, cols, vals, x, delegates)
        for r in range(nranks)
    ]
    res = run_ygm(
        make_spmv(problems),
        bench_machine(nodes, cores_per_node=cores_per_node),
        scheme,
        capacity,
        seed=seed,
        pdes_workers=pdes_workers or None,
    )
    return {
        "seconds": res.elapsed,
        "delegates": delegates.count,
        "ygm_messages": res.mailbox_stats.app_messages_sent,
    }


def combblas_cell(
    *,
    nodes: int,
    cores_per_node: int,
    scale: int,
    edge_factor: int,
    params: Sequence[float],
    seed: int,
) -> dict:
    """One CombBLAS-2D comparator cell."""
    nranks = nodes * cores_per_node
    n, rows, cols, vals, x = _make_problem(scale, edge_factor, params, seed)
    problems = partition_combblas_problem(nranks, n, rows, cols, vals, x)
    res = run_mpi(
        make_combblas_spmv(problems),
        bench_machine(nodes, cores_per_node=cores_per_node),
        seed=seed,
    )
    return {"seconds": res.elapsed}


def run_weak(
    sweep: Optional[SweepConfig] = None,
    verts_per_node_log2: int = 9,
    edge_factor: int = 16,
    skewed: bool = True,
    delegate_fraction: float = 0.05,
    pool: Optional[Pool] = None,
    pdes_workers: int = 0,
) -> Table:
    """Fig 8a (skewed=True, delegates on) / Fig 8c (skewed=False, none).

    The delegate column doubles as the Fig 8b series when skewed.
    """
    sweep = sweep or SweepConfig.quick()
    params = GRAPH500_PARAMS if skewed else UNIFORM_PARAMS
    label = "8a/8b (RMAT skewed, delegates)" if skewed else "8c (uniform, no delegates)"
    table = Table(
        title=f"Fig {label}: SpMV weak scaling "
        f"(2^{verts_per_node_log2} verts/node, edge factor {edge_factor}, "
        f"C={sweep.cores_per_node})",
        columns=["nodes", "impl", "seconds", "delegates", "ygm_messages"],
    )
    grid: List[Tuple[int, str]] = []
    jobs: List[Job] = []
    for nodes in sweep.node_counts:
        scale = verts_per_node_log2 + max(0, int(math.log2(nodes)))
        for scheme in schemes_for(nodes, sweep.cores_per_node):
            grid.append((nodes, f"ygm/{scheme}"))
            jobs.append(
                Job(
                    fn="repro.bench.fig8:ygm_cell",
                    kwargs=dict(
                        nodes=nodes,
                        scheme=scheme,
                        cores_per_node=sweep.cores_per_node,
                        capacity=sweep.mailbox_capacity,
                        scale=scale,
                        edge_factor=edge_factor,
                        params=list(params),
                        delegate_mode="scaled" if skewed else "none",
                        delegate_fraction=delegate_fraction,
                        seed=sweep.seed,
                        pdes_workers=pdes_workers,
                    ),
                    label=f"fig{label.split()[0]} N={nodes} {scheme}",
                )
            )
        grid.append((nodes, "combblas2d"))
        jobs.append(
            Job(
                fn="repro.bench.fig8:combblas_cell",
                kwargs=dict(
                    nodes=nodes,
                    cores_per_node=sweep.cores_per_node,
                    scale=scale,
                    edge_factor=edge_factor,
                    params=list(params),
                    seed=sweep.seed,
                ),
                label=f"fig{label.split()[0]} N={nodes} combblas2d",
            )
        )
    cells = run_jobs(jobs, pool)
    for (nodes, impl), cell in zip(grid, cells):
        table.add(
            nodes=nodes,
            impl=impl,
            seconds=cell["seconds"],
            delegates=cell.get("delegates"),
            ygm_messages=cell.get("ygm_messages"),
        )
    if skewed:
        table.note("the 'delegates' column is the Fig 8b series")
    return table


def run_strong_webgraph(
    sweep: Optional[SweepConfig] = None,
    scale: int = 14,
    edge_factor: int = 16,
    mailbox_base: int = 2**8,
    scale_mailbox_with_nodes: bool = True,
    pool: Optional[Pool] = None,
    pdes_workers: int = 0,
) -> Table:
    """Fig 8d: strong scaling on the webgraph substitute.

    The paper scales mailbox size as 2^10 x N; we mirror that with
    ``mailbox_base * N`` (and can disable it to show why it is needed).
    """
    sweep = sweep or SweepConfig.quick()
    table = Table(
        title=f"Fig 8d: SpMV strong scaling, webgraph-like RMAT "
        f"(2^{scale} vertices, edge factor {edge_factor}, "
        f"mailbox {'%d*N' % mailbox_base if scale_mailbox_with_nodes else mailbox_base}, "
        f"C={sweep.cores_per_node})",
        columns=["nodes", "impl", "seconds", "mailbox"],
    )
    # Heavy-tailed webgraph substitute: slightly more skewed than Graph500.
    params = (0.60, 0.18, 0.18, 0.04)
    grid: List[Tuple[int, str, Optional[int]]] = []
    jobs: List[Job] = []
    for nodes in sweep.node_counts:
        capacity = mailbox_base * nodes if scale_mailbox_with_nodes else mailbox_base
        for scheme in schemes_for(nodes, sweep.cores_per_node, ["node_remote", "nlnr"]):
            grid.append((nodes, f"ygm/{scheme}", capacity))
            jobs.append(
                Job(
                    fn="repro.bench.fig8:ygm_cell",
                    kwargs=dict(
                        nodes=nodes,
                        scheme=scheme,
                        cores_per_node=sweep.cores_per_node,
                        capacity=capacity,
                        scale=scale,
                        edge_factor=edge_factor,
                        params=list(params),
                        delegate_mode="scaled",
                        delegate_fraction=0.05,
                        seed=sweep.seed,
                        pdes_workers=pdes_workers,
                    ),
                    label=f"fig8d N={nodes} {scheme}",
                )
            )
        grid.append((nodes, "combblas2d", None))
        jobs.append(
            Job(
                fn="repro.bench.fig8:combblas_cell",
                kwargs=dict(
                    nodes=nodes,
                    cores_per_node=sweep.cores_per_node,
                    scale=scale,
                    edge_factor=edge_factor,
                    params=list(params),
                    seed=sweep.seed,
                ),
                label=f"fig8d N={nodes} combblas2d",
            )
        )
    cells = run_jobs(jobs, pool)
    for (nodes, impl, capacity), cell in zip(grid, cells):
        table.add(
            nodes=nodes, impl=impl, seconds=cell["seconds"], mailbox=capacity
        )
    return table
