"""Fig 8: SpMV scaling -- YGM (with/without delegates) vs CombBLAS-style 2D.

Paper setup (scaled down):

* 8a: weak scaling on skewed RMAT (0.57/0.19/0.19/0.05), 2^24 verts/node,
  edge factor 16, YGM uses delegates; CombBLAS comparator.
* 8b: delegate-count growth across the 8a sweep.
* 8c: same but uniform RMAT (0.25^4) and *no* delegates.
* 8d: strong scaling on the WDC 2012 webgraph (3.5B vertices).  The real
  trace is unavailable, so we substitute a synthetic scale-free
  "webgraph-like" RMAT at reduced scale (see DESIGN.md); the paper's key
  observation -- the mailbox size must scale with N or coalescing starves
  -- is reproduced by sweeping both fixed and N-scaled mailboxes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines import (
    choose_grid,
    make_combblas_spmv,
    partition_combblas_problem,
)
from ..graph import (
    GRAPH500_PARAMS,
    UNIFORM_PARAMS,
    build_delegates,
    rmat_edges,
    scaled_delegate_threshold,
)
from ..graph.delegates import DelegateSet
from ..linalg import make_spmv, partition_spmv_problem
from .harness import SweepConfig, run_mpi, run_ygm, schemes_for
from .report import Table


def _make_problem(scale: int, edge_factor: int, params, seed: int):
    n = 1 << scale
    nnz = edge_factor * n
    rng = np.random.default_rng(seed)
    rows, cols = rmat_edges(scale, nnz, rng, params=params)
    vals = rng.standard_normal(nnz)
    x = rng.standard_normal(n)
    return n, rows, cols, vals, x


def _run_ygm_spmv(
    nranks, nodes, sweep, scheme, n, rows, cols, vals, x, delegates, capacity=None
):
    problems = [
        partition_spmv_problem(r, nranks, n, rows, cols, vals, x, delegates)
        for r in range(nranks)
    ]
    return run_ygm(
        make_spmv(problems),
        sweep.machine(nodes),
        scheme,
        capacity or sweep.mailbox_capacity,
        seed=sweep.seed,
    )


def _run_combblas_spmv(nranks, nodes, sweep, n, rows, cols, vals, x):
    problems = partition_combblas_problem(nranks, n, rows, cols, vals, x)
    return run_mpi(make_combblas_spmv(problems), sweep.machine(nodes), seed=sweep.seed)


def run_weak(
    sweep: Optional[SweepConfig] = None,
    verts_per_node_log2: int = 9,
    edge_factor: int = 16,
    skewed: bool = True,
    delegate_fraction: float = 0.05,
) -> Table:
    """Fig 8a (skewed=True, delegates on) / Fig 8c (skewed=False, none).

    The delegate column doubles as the Fig 8b series when skewed.
    """
    sweep = sweep or SweepConfig.quick()
    params = GRAPH500_PARAMS if skewed else UNIFORM_PARAMS
    label = "8a/8b (RMAT skewed, delegates)" if skewed else "8c (uniform, no delegates)"
    table = Table(
        title=f"Fig {label}: SpMV weak scaling "
        f"(2^{verts_per_node_log2} verts/node, edge factor {edge_factor}, "
        f"C={sweep.cores_per_node})",
        columns=["nodes", "impl", "seconds", "delegates", "ygm_messages"],
    )
    for nodes in sweep.node_counts:
        nranks = nodes * sweep.cores_per_node
        scale = verts_per_node_log2 + max(0, int(math.log2(nodes)))
        n, rows, cols, vals, x = _make_problem(scale, edge_factor, params, sweep.seed)
        if skewed:
            threshold = scaled_delegate_threshold(
                scale, len(rows), params[0], params[1], fraction=delegate_fraction
            )
            delegates = build_delegates(rows, cols, n, threshold)
        else:
            delegates = DelegateSet(np.empty(0, dtype=np.int64))
        for scheme in schemes_for(nodes, sweep.cores_per_node):
            res = _run_ygm_spmv(
                nranks, nodes, sweep, scheme, n, rows, cols, vals, x, delegates
            )
            table.add(
                nodes=nodes,
                impl=f"ygm/{scheme}",
                seconds=res.elapsed,
                delegates=delegates.count,
                ygm_messages=res.mailbox_stats.app_messages_sent,
            )
        res_cb = _run_combblas_spmv(nranks, nodes, sweep, n, rows, cols, vals, x)
        table.add(
            nodes=nodes, impl="combblas2d", seconds=res_cb.elapsed,
            delegates=None, ygm_messages=None,
        )
    if skewed:
        table.note("the 'delegates' column is the Fig 8b series")
    return table


def run_strong_webgraph(
    sweep: Optional[SweepConfig] = None,
    scale: int = 14,
    edge_factor: int = 16,
    mailbox_base: int = 2**8,
    scale_mailbox_with_nodes: bool = True,
) -> Table:
    """Fig 8d: strong scaling on the webgraph substitute.

    The paper scales mailbox size as 2^10 x N; we mirror that with
    ``mailbox_base * N`` (and can disable it to show why it is needed).
    """
    sweep = sweep or SweepConfig.quick()
    table = Table(
        title=f"Fig 8d: SpMV strong scaling, webgraph-like RMAT "
        f"(2^{scale} vertices, edge factor {edge_factor}, "
        f"mailbox {'%d*N' % mailbox_base if scale_mailbox_with_nodes else mailbox_base}, "
        f"C={sweep.cores_per_node})",
        columns=["nodes", "impl", "seconds", "mailbox"],
    )
    # Heavy-tailed webgraph substitute: slightly more skewed than Graph500.
    params = (0.60, 0.18, 0.18, 0.04)
    n, rows, cols, vals, x = _make_problem(scale, edge_factor, params, sweep.seed)
    threshold = scaled_delegate_threshold(scale, len(rows), params[0], params[1])
    delegates = build_delegates(rows, cols, n, threshold)
    for nodes in sweep.node_counts:
        nranks = nodes * sweep.cores_per_node
        capacity = mailbox_base * nodes if scale_mailbox_with_nodes else mailbox_base
        for scheme in schemes_for(nodes, sweep.cores_per_node, ["node_remote", "nlnr"]):
            res = _run_ygm_spmv(
                nranks, nodes, sweep, scheme, n, rows, cols, vals, x, delegates,
                capacity=capacity,
            )
            table.add(
                nodes=nodes, impl=f"ygm/{scheme}", seconds=res.elapsed,
                mailbox=capacity,
            )
        res_cb = _run_combblas_spmv(nranks, nodes, sweep, n, rows, cols, vals, x)
        table.add(nodes=nodes, impl="combblas2d", seconds=res_cb.elapsed, mailbox=None)
    return table
