"""Flight-recorded PDES attribution mode behind ``repro.bench pdes``.

Runs one representative partitioned configuration of a figure workload
with the flight recorder on (:mod:`repro.pdes.flight`), then writes the
overhead-attribution report pair (JSON + self-contained HTML, rendered
by :mod:`repro.trace.pdes_report`) and the merged Chrome trace: the
usual simulated-time process groups plus one host wall-clock group per
worker and one for the driver.

The run itself is bit-identical to a serial run of the same
configuration (the recorder only reads state; ``tests/pdes/test_flight``
enforces it), so the summary row matches what an untraced serial run
would print -- only the *telemetry* is new.
"""

from __future__ import annotations

from typing import Optional

from ..trace import Tracer
from .harness import SweepConfig, schemes_for
from .report import Table
from .tracing import _workload


def run_attribution(
    fig: str,
    sweep: SweepConfig,
    html_path: str,
    json_path: str,
    trace_path: Optional[str] = None,
    workers: int = 4,
    transport: Optional[str] = None,
) -> Table:
    """Run ``fig``'s workload partitioned + flight-recorded; write reports."""
    from ..pdes import PdesWorld
    from ..trace.pdes_report import write_report

    if workers < 2:
        raise ValueError(
            f"--attribute needs >= 2 PDES workers, got {workers}"
        )
    # Smallest sweep preset that gives every worker at least one node
    # (the partition is by node) and has remote traffic.
    floor = max(2, workers)
    candidates = [n for n in sweep.node_counts if n >= floor]
    nodes = min(candidates) if candidates else max(sweep.node_counts)
    workers = min(workers, nodes)
    schemes = schemes_for(nodes, sweep.cores_per_node)
    scheme = "nlnr" if "nlnr" in schemes else schemes[-1]

    tracer = Tracer()
    world = PdesWorld(
        sweep.machine(nodes),
        scheme=scheme,
        seed=sweep.seed,
        mailbox_capacity=sweep.mailbox_capacity,
        tracer=tracer,
        workers=workers,
        transport=transport,
        flight=True,
    )
    res = world.run(_workload(fig, sweep, nodes))
    tracer.close()
    log = world.flight_log
    doc = log.attribution()
    write_report(doc, html_path, json_path)
    if trace_path:
        tracer.export_chrome(trace_path, extra_events=log.to_chrome_events())

    se = doc["serial_equivalent"]
    table = Table(
        title=f"PDES attribution: fig {fig}, {nodes} nodes x "
        f"{sweep.cores_per_node} cores, {workers} workers, "
        f"{world.transport} transport, scheme {scheme}",
        columns=[
            "seconds", "rounds", "exported_packets", "spilled_batches",
            "wall_s", "serial_equiv",
        ],
    )
    table.add(
        seconds=res.elapsed,
        rounds=world.rounds,
        exported_packets=world.exported_packets,
        spilled_batches=world.spilled_batches,
        wall_s=se["wall_s"],
        serial_equiv=se["fraction"],
    )
    table.note(f"attribution report written to {html_path} (+ {json_path})")
    worst = min(
        [doc["driver"]["coverage"]] + [w["coverage"] for w in doc["workers"]]
    )
    table.note(
        f"phase buckets tile >= {worst:.1%} of every process's span; "
        f"serial-equivalent compute {se['compute_s']:.3f}s of "
        f"{se['wall_s']:.3f}s wall"
    )
    if trace_path:
        table.note(
            f"merged Chrome trace (simulated + per-worker wall clock) "
            f"written to {trace_path}"
        )
    return table
