"""Shared experiment-running machinery for the figure benchmarks.

Each figure module builds workloads, sweeps ``(scheme, nodes)`` grids and
returns :class:`~repro.bench.report.Table` objects whose rows mirror the
series plotted in the paper.  Simulated seconds are the measured
quantity; wall-clock time of the simulation itself is what
pytest-benchmark tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, List, Optional, Sequence

from ..core import YgmResult, YgmWorld
from ..core.routing import PAPER_SCHEMES
from ..machine import MachineConfig, bench_machine
from ..mpi import World


@dataclass(frozen=True)
class SweepConfig:
    """Scaled-down sweep parameters (the paper's axes, shrunk).

    ``quick`` keeps the whole figure suite runnable in a couple of
    minutes; ``full`` pushes node counts (and therefore rank counts) up
    for cleaner asymptotics.
    """

    cores_per_node: int
    node_counts: Sequence[int]
    mailbox_capacity: int
    seed: int = 0

    @classmethod
    def quick(cls) -> "SweepConfig":
        return cls(cores_per_node=4, node_counts=(1, 2, 4, 8, 16), mailbox_capacity=2**12)

    @classmethod
    def full(cls) -> "SweepConfig":
        return cls(
            cores_per_node=8,
            node_counts=(1, 2, 4, 8, 16, 32, 64),
            mailbox_capacity=2**13,
        )

    def machine(self, nodes: int, **overrides) -> MachineConfig:
        return bench_machine(nodes, cores_per_node=self.cores_per_node, **overrides)


def schemes_for(nodes: int, cores: int, schemes: Iterable[str] = PAPER_SCHEMES) -> List[str]:
    """The paper ran NLNR only once a layer roughly fills (>= C nodes,
    Section VI): below that its remote channels degenerate.  ``adaptive``
    embeds an NLNR fallback for its congested branch, so it is gated the
    same way; ``node_aware`` has no such constraint."""
    out = []
    for s in schemes:
        if (s.startswith("nlnr") or s == "adaptive") and nodes < cores:
            continue
        out.append(s)
    return out


def run_ygm(
    make_app: Callable[..., Callable],
    machine: MachineConfig,
    scheme: str,
    capacity: int,
    seed: int = 0,
    tracer=None,
    pdes_workers: Optional[int] = None,
) -> YgmResult:
    """Run one YGM configuration to completion.

    ``pdes_workers`` > 1 runs the simulation partitioned across that
    many worker processes through the parallel engine
    (:class:`~repro.pdes.PdesWorld`; clamped to the node count).  The
    result is bit-identical to the serial run -- the engine's
    conformance battery (tests/pdes) enforces it -- so figure tables
    are unchanged by construction.
    """
    if pdes_workers is not None and pdes_workers > 1:
        from ..pdes import PdesWorld

        engine = PdesWorld(
            machine,
            scheme=scheme,
            seed=seed,
            mailbox_capacity=capacity,
            tracer=tracer,
            workers=min(pdes_workers, machine.nodes),
        )
        return engine.run(make_app)
    world = YgmWorld(
        machine, scheme=scheme, seed=seed, mailbox_capacity=capacity, tracer=tracer
    )
    return world.run(make_app)


def run_mpi(rank_main: Callable, machine: MachineConfig, seed: int = 0):
    """Run one plain-MPI (baseline) configuration."""
    world = World(machine, seed=seed)
    return world.run(rank_main)


def efficiency(base_elapsed: float, base_nodes: int, elapsed: float, nodes: int, weak: bool) -> float:
    """Parallel efficiency relative to the smallest configuration."""
    if elapsed == 0:
        return float("nan")
    if weak:
        return base_elapsed / elapsed
    return (base_elapsed / elapsed) * (base_nodes / nodes)
