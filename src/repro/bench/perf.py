"""Wall-clock performance harness: ``python -m repro.bench --perf``.

The figure harnesses report *simulated* seconds; this module measures the
*host* wall clock of the DES stack itself, so successive PRs can track
(and defend) the speed of the reproduction.  It runs

* **microbenchmarks** -- kernel event-dispatch throughput (events/sec),
  mailbox end-to-end message throughput (messages/sec), and serde packing
  bandwidth (MB/s), and
* **macrobenchmarks** -- the fig6 degree-counting and fig7
  connected-components workloads end-to-end at two machine scales
  (wall seconds, lower is better),

each repeated several times, and writes a schema-versioned
``BENCH_perf.json`` (median + IQR per benchmark, host fingerprint) so
runs are comparable across commits.  Pass a previous report via
``--perf-baseline`` to embed its medians and per-benchmark speedups in
the new report.

Timing is inherently noisy; nothing here fails on a slow run (the CI
``perf-smoke`` job only guards against harness errors).  Compare medians
across runs on the same host, not absolute numbers across hosts.
"""

from __future__ import annotations

import gc
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bump when the JSON layout changes shape (consumers should check it).
SCHEMA_VERSION = 1

#: Default number of repeats per benchmark (median/IQR need >= 5).
DEFAULT_REPEATS = 5


# ------------------------------------------------------------- statistics
def median_iqr(values: List[float]) -> Tuple[float, float]:
    """Median and interquartile range (linear interpolation)."""
    xs = sorted(values)
    n = len(xs)

    def quantile(q: float) -> float:
        if n == 1:
            return xs[0]
        pos = q * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    return quantile(0.5), quantile(0.75) - quantile(0.25)


def host_fingerprint() -> Dict[str, Any]:
    """Enough host identity to know when two reports are comparable."""
    info: Dict[str, Any] = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    info["cpu_model"] = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return info


# ---------------------------------------------------------- microbenchmarks
def bench_kernel_events(smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """Kernel dispatch throughput: scheduled-callback chains (events/sec)."""
    from ..sim import Simulator

    n = 20_000 if smoke else 200_000
    chains = 64
    sim = Simulator()
    done = [0]

    def tick() -> None:
        done[0] += 1
        if done[0] < n:
            sim.schedule(1e-6, tick)

    for i in range(chains):
        sim.schedule(1e-9 * i, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim.steps / wall, {"events": sim.steps, "chains": chains}


def bench_kernel_processes(smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """Kernel throughput under generator processes yielding timeouts."""
    from ..sim import Simulator

    nprocs = 64
    rounds = 50 if smoke else 1500
    sim = Simulator()

    def worker(sim, jitter):
        for _ in range(rounds):
            yield sim.timeout(1e-6 + jitter)

    for i in range(nprocs):
        sim.process(worker(sim, 1e-9 * i))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim.steps / wall, {"events": sim.steps, "processes": nprocs}


def bench_mailbox(smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """End-to-end mailbox throughput on the columnar path (messages/sec).

    The same machine shape and message count as ``mailbox_scalar_send``,
    but injected through ``send_many`` in application-sized chunks so
    messages ride the struct-of-arrays pipeline end to end.  The pair
    records the columnar speedup in the perf trajectory; the perf gate
    (``--perf-gate``) enforces a floor on their ratio.
    """
    from ..core import YgmWorld
    from ..machine import bench_machine

    nodes, cores = (2, 2) if smoke else (2, 4)
    msgs = 500 if smoke else 4000
    chunk = 1024  # one coalescing-buffer capacity per send_many call
    machine = bench_machine(nodes, cores_per_node=cores)
    nranks = nodes * cores

    # Inputs are precomputed so the timed region measures the pipeline,
    # not the benchmark's own chunk construction.
    chunks = {
        rank: [
            (
                [
                    (rank + 1 + i % (nranks - 1)) % nranks
                    for i in range(lo, min(lo + chunk, msgs))
                ],
                list(range(lo, min(lo + chunk, msgs))),
            )
            for lo in range(0, msgs, chunk)
        ]
        for rank in range(nranks)
    }

    def rank_main(ctx):
        received = [0]

        def on_recv(_v):
            received[0] += 1

        mb = ctx.mailbox(recv=on_recv)
        for dests, payloads in chunks[ctx.rank]:
            yield from mb.send_many(dests, payloads)
        yield from mb.wait_empty()
        return received[0]

    world = YgmWorld(machine, scheme="node_local", seed=0, mailbox_capacity=1024)
    t0 = time.perf_counter()
    world.run(rank_main)
    wall = time.perf_counter() - t0
    return (msgs * nranks) / wall, {
        "ranks": nranks,
        "messages": msgs * nranks,
        "chunk": chunk,
    }


def bench_mailbox_scalar(smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """End-to-end mailbox throughput (scalar sends, messages/sec).

    The pre-PR-6 workload, unchanged: one ``send`` call per message.
    Scalar posts still join columnar runs inside the buffer, so this
    tracks the per-call overhead the batched API amortises away.
    """
    from ..core import YgmWorld
    from ..machine import bench_machine

    nodes, cores = (2, 2) if smoke else (2, 4)
    msgs = 500 if smoke else 4000
    machine = bench_machine(nodes, cores_per_node=cores)
    nranks = nodes * cores

    def rank_main(ctx):
        received = [0]

        def on_recv(_v):
            received[0] += 1

        mb = ctx.mailbox(recv=on_recv)
        n = ctx.nranks
        rank = ctx.rank
        for i in range(msgs):
            yield from mb.send((rank + 1 + i % (n - 1)) % n, i)
        yield from mb.wait_empty()
        return received[0]

    world = YgmWorld(machine, scheme="node_local", seed=0, mailbox_capacity=1024)
    t0 = time.perf_counter()
    world.run(rank_main)
    wall = time.perf_counter() - t0
    return (msgs * nranks) / wall, {"ranks": nranks, "messages": msgs * nranks}


def _payload_stream(n: int, seed: int = 7) -> List[Any]:
    """A seeded stream of small mixed payloads (the scalar-send shapes)."""
    import random

    rng = random.Random(seed)
    out: List[Any] = []
    for i in range(n):
        k = i % 8
        if k == 0:
            out.append(rng.getrandbits(rng.choice((6, 13, 27, 48))))
        elif k == 1:
            out.append(-rng.getrandbits(20))
        elif k == 2:
            out.append(rng.random())
        elif k == 3:
            out.append((rng.getrandbits(32), rng.getrandbits(16), rng.random()))
        elif k == 4:
            out.append("v" * rng.randrange(1, 24))
        elif k == 5:
            out.append([rng.getrandbits(10) for _ in range(rng.randrange(5))])
        elif k == 6:
            out.append({"k": rng.getrandbits(16), "w": rng.random()})
        else:
            out.append(rng.choice((None, True, False)))
    return out


def bench_packer_small(smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """Serde bandwidth on small mixed payloads (pack + unpack, MB/s)."""
    from .. import serde

    n = 2_000 if smoke else 30_000
    objs = _payload_stream(n)
    pack_many = getattr(serde, "pack_many", None)
    unpack_many = getattr(serde, "unpack_many", None)
    t0 = time.perf_counter()
    if pack_many is not None:
        blob = bytes(pack_many(objs))
    else:  # pre-batching fallback: the same job, one object at a time
        blob = b"".join(serde.pack(o) for o in objs)
    if unpack_many is not None:
        out = unpack_many(blob)
    else:
        out = [serde.unpack(serde.pack(o)) for o in objs]
    wall = time.perf_counter() - t0
    assert len(out) == n
    mb = 2 * len(blob) / 1e6  # packed once, unpacked once
    return mb / wall, {"objects": n, "stream_bytes": len(blob)}


def bench_packer_records(smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """Serde bandwidth on structured record batches (pack + unpack, MB/s)."""
    import numpy as np

    from ..serde import RecordSpec, pack, unpack

    spec = RecordSpec("edge", [("src", "u8"), ("dst", "u8"), ("w", "f4")])
    rng = np.random.default_rng(11)
    batches = []
    nbatches = 20 if smoke else 200
    for _ in range(nbatches):
        n = int(rng.integers(64, 512))
        batch = spec.zeros(n)
        batch["src"] = rng.integers(0, 2**40, n)
        batch["dst"] = rng.integers(0, 2**40, n)
        batch["w"] = rng.standard_normal(n).astype("f4")
        batches.append(batch)
    t0 = time.perf_counter()
    total = 0
    for batch in batches:
        blob = pack(batch)
        total += len(blob)
        unpack(blob)
    wall = time.perf_counter() - t0
    return 2 * total / 1e6 / wall, {"batches": nbatches, "stream_bytes": total}


def _transport_exports(nmsgs: int, npackets: int) -> List[tuple]:
    """A representative window export batch: columnar app packets.

    The shape the PDES engine actually ships -- ``P2PColumns`` runs of
    int payloads inside mailbox app packets -- so the transport bench
    measures the real wire format, not a synthetic blob.  Runs are kept
    short (8 messages per packet): high-fanout traffic spreads each
    flush across many destinations, so per-destination columnar runs
    are small at the Quartz-scale node counts the engine targets, and
    per-packet overhead -- not bulk bandwidth -- is what buried PR 7's
    pipe+pickle transport.
    """
    import numpy as np

    from ..core.coalescing import P2PColumns
    from ..mpi.envelope import Packet

    per = nmsgs // npackets
    exports = []
    for i in range(npackets):
        dests = (np.arange(per, dtype=np.int64) * 7 + i) % 16
        payloads = np.empty(per, dtype=object)
        payloads[:] = [(j * 31 + i) for j in range(per)]
        nbytes = np.full(per, 12, dtype=np.int64)
        cols = P2PColumns(dests, payloads, nbytes)
        pkt = Packet(
            src=i % 16, dst=(i + 1) % 16, ctx=0, kind=("ygm", 1, "app"),
            tag=0, payload=[cols], nbytes=cols.wire_bytes,
        )
        exports.append((1e-3 * (i + 1), pkt.src, pkt.dst, pkt.nbytes, pkt))
    return exports


def bench_pdes_transport(smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """PDES export transport round-trip throughput (messages/sec).

    Isolates what used to be buried inside ``pdes_speedup``: the cost of
    moving one window's export batch to another process and back.  A
    forked echo child runs both transports over the same batch of
    columnar app packets -- the legacy path (the whole batch pickled
    through a ``multiprocessing.Pipe``) and the shm path (a tiny
    descriptor on the pipe, the serde-encoded bytes through the
    :mod:`repro.pdes.rings` SPSC rings).  The value is the ring path's
    messages/sec; ``params["ring_vs_pipe"]`` carries the ratio the perf
    gate enforces a floor on.
    """
    import multiprocessing

    from ..pdes.rings import ShmTransport, recv_batch, send_batch

    nmsgs = 2048 if smoke else 16384
    npackets = max(1, nmsgs // 8)
    rounds = 30 if smoke else 60
    exports = _transport_exports(nmsgs, npackets)
    ctx = multiprocessing.get_context("fork")

    class _Harness:
        """One echo child on one transport, timed in segments."""

        def __init__(self, use_rings: bool):
            self.rings = ShmTransport(1) if use_rings else None
            self.parent, child = ctx.Pipe()
            rings = self.rings
            parent = self.parent

            def echo() -> None:
                parent.close()
                gc.disable()  # mirror the parent's clocked sections
                scratch = bytearray()
                try:
                    while True:
                        msg = child.recv()
                        if msg is None:
                            return
                        if rings is None:
                            child.send(msg)
                        else:
                            batch = recv_batch(rings.to_worker[0], msg)
                            child.send(
                                send_batch(
                                    rings.from_worker[0], batch, scratch
                                )
                            )
                except EOFError:
                    return
                finally:
                    if rings is not None:
                        rings.close()
                    child.close()

            self.proc = ctx.Process(target=echo, daemon=True)
            self.proc.start()
            child.close()
            self.scratch = bytearray()

        def round_trip(self) -> int:
            if self.rings is None:
                self.parent.send(exports)
                return len(self.parent.recv())
            self.parent.send(
                send_batch(self.rings.to_worker[0], exports, self.scratch)
            )
            return len(recv_batch(self.rings.from_worker[0],
                                  self.parent.recv()))

        def segment(self, seg: int) -> float:
            t0 = time.perf_counter()
            for _ in range(seg):
                self.round_trip()
            return (time.perf_counter() - t0) / seg

        def stop(self) -> None:
            try:
                self.parent.send(None)
                self.proc.join(10.0)
            except (BrokenPipeError, OSError):
                pass
            finally:
                if self.proc.is_alive():
                    self.proc.terminate()
                self.parent.close()
                if self.rings is not None:
                    self.rings.close()
                    self.rings.unlink()

    # Both transports run interleaved, segment by segment, and each
    # keeps its best segment: on a busy (or single-core) host the two
    # paths must see the same machine conditions or scheduler drift
    # between the runs swamps the ratio; the per-segment minimum sheds
    # hiccups and GC passes.
    pipe_h = _Harness(use_rings=False)
    ring_h = _Harness(use_rings=True)
    seg = max(1, rounds // 10)
    pipe_best = math.inf
    ring_best = math.inf
    gc_was_on = gc.isenabled()
    try:
        assert pipe_h.round_trip() == npackets  # warmup outside the clock
        assert ring_h.round_trip() == npackets
        gc.disable()
        done = 0
        while done < rounds:
            pipe_best = min(pipe_best, pipe_h.segment(seg))
            ring_best = min(ring_best, ring_h.segment(seg))
            done += seg
    finally:
        if gc_was_on:
            gc.enable()
        pipe_h.stop()
        ring_h.stop()
    return nmsgs / ring_best, {
        "messages": nmsgs,
        "packets": npackets,
        "rounds": rounds,
        "pipe_msgs_per_sec": nmsgs / pipe_best,
        "ring_vs_pipe": pipe_best / ring_best,
    }


def bench_pdes_e2e(smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """Serial/parallel wall-clock ratio of one partitioned run (x).

    The same degree-counting scenario runs once serially
    (:class:`~repro.core.YgmWorld`) and once partitioned across two
    worker processes (:class:`~repro.pdes.PdesWorld`); the value is
    serial wall / parallel wall, so > 1 means partitioning paid off.
    On a host with a single free core expect ~1.0x or below (fork and
    barrier overhead with no parallel hardware to win it back); the
    entry tracks the trajectory -- barrier cost, now that
    ``pdes_transport`` isolates transport cost -- and nothing gates on
    it.
    """
    from ..apps import make_degree_counting
    from ..core import YgmWorld
    from ..graph import er_stream
    from ..machine import bench_machine
    from ..pdes import PdesWorld

    nodes, cores = (2, 2) if smoke else (4, 2)
    edges_per_rank = 200 if smoke else 1500
    machine = bench_machine(nodes, cores_per_node=cores)
    stream = er_stream(
        num_vertices=256, edges_per_rank=edges_per_rank, seed=5
    )

    def make():
        return make_degree_counting(stream, batch_size=64)

    t0 = time.perf_counter()
    YgmWorld(machine, scheme="nlnr", seed=0, mailbox_capacity=256).run(make())
    serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    PdesWorld(
        machine, scheme="nlnr", seed=0, mailbox_capacity=256, workers=2
    ).run(make())
    parallel = time.perf_counter() - t0
    return serial / parallel, {
        "workload": "degree_count",
        "nodes": nodes,
        "cores_per_node": cores,
        "edges_per_rank": edges_per_rank,
        "workers": 2,
        "serial_seconds": serial,
        "parallel_seconds": parallel,
    }


def _bench_combining(app: str, smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """Host wall-clock speedup from in-network combining (x, off/on).

    One fig6/fig7-representative panel runs twice under ``nlnr`` --
    combining off, then on -- and the value is wall(off) / wall(on):
    merged records are records the simulator never has to forward, so
    the reduction shows up directly as host time.  The params carry the
    simulated-traffic reductions (``forwarded_reduction``,
    ``wire_reduction``), which are deterministic and self-normalising
    (both runs in the same cell); the perf gate enforces the >= 25%
    floor on them.
    """
    from ..apps import make_connected_components, make_degree_counting
    from ..core import YgmWorld
    from ..graph import er_stream, rmat_stream
    from ..machine import bench_machine

    nodes, cores = (2, 2) if smoke else (4, 4)
    capacity = 2**8
    machine = bench_machine(nodes, cores_per_node=cores)
    if app == "degree_count":
        # Fig6 shape with a concentrated key space: a fixed edge budget
        # over few vertices, so per-destination windows are duplicate-rich.
        edges_per_rank = 512 if smoke else 4096
        num_vertices = 16 * nodes * cores
        stream = er_stream(
            num_vertices=num_vertices, edges_per_rank=edges_per_rank, seed=5
        )

        def make(combining):
            return make_degree_counting(
                stream, batch_size=1024, capacity=capacity,
                combining=combining,
            )

    else:
        # Fig7's RMAT workload; only extreme hubs are delegated so label
        # updates ride the combinable point-to-point mailbox.
        edges_per_rank = 512 if smoke else 2048
        scale = 8 if smoke else 10
        stream = rmat_stream(scale, edges_per_rank, seed=5)
        mean_degree = (
            2.0 * edges_per_rank * nodes * cores / stream.num_vertices
        )

        def make(combining):
            return make_connected_components(
                stream,
                delegate_threshold=16.0 * mean_degree,
                batch_size=1024,
                capacity=capacity,
                combining=combining,
            )

    def run(combining):
        world = YgmWorld(
            machine, scheme="nlnr", seed=0, mailbox_capacity=capacity
        )
        t0 = time.perf_counter()
        res = world.run(make(combining))
        return time.perf_counter() - t0, res.mailbox_stats

    wall_off, stats_off = run(False)
    wall_on, stats_on = run(True)
    return wall_off / wall_on, {
        "workload": app,
        "scheme": "nlnr",
        "nodes": nodes,
        "cores_per_node": cores,
        "edges_per_rank": edges_per_rank,
        "entries_combined": stats_on.entries_combined,
        "forwarded_reduction": 1.0
        - (
            stats_on.entries_forwarded / stats_off.entries_forwarded
            if stats_off.entries_forwarded
            else 1.0
        ),
        "wire_reduction": 1.0
        - (
            stats_on.remote_bytes_sent / stats_off.remote_bytes_sent
            if stats_off.remote_bytes_sent
            else 1.0
        ),
        "wall_off_seconds": wall_off,
        "wall_on_seconds": wall_on,
    }


# ---------------------------------------------------------- macrobenchmarks
def _macro_sweep(nodes: int, smoke: bool):
    from .harness import SweepConfig

    return SweepConfig(
        cores_per_node=2 if smoke else 4,
        node_counts=(nodes,),
        mailbox_capacity=2**12,
        seed=0,
    )


def _bench_sweep_fig6(jobs: Optional[int], smoke: bool) -> Tuple[float, Dict[str, Any]]:
    """The fig6a weak-scaling *sweep* end-to-end (the `--fig 6a` macro).

    ``jobs=None`` is the serial driver path; otherwise the cells fan out
    over a ``jobs``-worker pool with the cache disabled, so the entry
    measures compute + pool overhead, never disk hits.  The
    serial/parallel entry pair records the sweep speedup in the perf
    trajectory (acceptance: >= 3x on >= 4 free cores).
    """
    from ..exec import Pool
    from . import fig6
    from .harness import SweepConfig

    sweep = SweepConfig(
        cores_per_node=2 if smoke else 4,
        node_counts=(1, 2) if smoke else (1, 2, 4, 8),
        mailbox_capacity=2**12,
        seed=0,
    )
    pool = Pool(jobs=jobs, cache=None) if jobs is not None else None
    t0 = time.perf_counter()
    fig6.run_weak(sweep, pool=pool)
    wall = time.perf_counter() - t0
    return wall, {
        "workload": "fig6a weak sweep",
        "node_counts": list(sweep.node_counts),
        "jobs": pool.jobs if pool is not None else 1,
    }


def _bench_fig6(nodes: int, smoke: bool) -> Tuple[float, Dict[str, Any]]:
    from . import fig6

    t0 = time.perf_counter()
    fig6.run_weak(_macro_sweep(nodes, smoke))
    wall = time.perf_counter() - t0
    return wall, {"nodes": nodes, "workload": "fig6a degree weak"}


def _bench_fig7(nodes: int, smoke: bool) -> Tuple[float, Dict[str, Any]]:
    from . import fig7

    t0 = time.perf_counter()
    fig7.run_weak(_macro_sweep(nodes, smoke))
    wall = time.perf_counter() - t0
    return wall, {"nodes": nodes, "workload": "fig7a cc weak"}


# ----------------------------------------------------------------- registry
@dataclass(frozen=True)
class BenchSpec:
    name: str
    unit: str
    higher_is_better: bool
    fn: Callable[[bool], Tuple[float, Dict[str, Any]]]
    #: Whether repeats may run in isolated pool workers (``--jobs``).
    #: Benchmarks that drive a pool themselves must stay in-parent so
    #: worker processes are not nested.
    isolate: bool = True


def _sweep_parallel_jobs() -> int:
    from ..exec import default_jobs

    return default_jobs()


BENCHMARKS: List[BenchSpec] = [
    BenchSpec("kernel_events", "events/sec", True, bench_kernel_events),
    BenchSpec("kernel_processes", "events/sec", True, bench_kernel_processes),
    BenchSpec("mailbox_messages", "messages/sec", True, bench_mailbox),
    BenchSpec("mailbox_scalar_send", "messages/sec", True, bench_mailbox_scalar),
    BenchSpec("packer_small", "MB/s", True, bench_packer_small),
    BenchSpec("packer_records", "MB/s", True, bench_packer_records),
    BenchSpec("fig6_degree_small", "seconds", False, lambda s: _bench_fig6(2 if s else 4, s)),
    BenchSpec("fig6_degree_large", "seconds", False, lambda s: _bench_fig6(4 if s else 8, s)),
    BenchSpec("fig7_cc_small", "seconds", False, lambda s: _bench_fig7(2 if s else 4, s)),
    BenchSpec("fig7_cc_large", "seconds", False, lambda s: _bench_fig7(4 if s else 8, s)),
    BenchSpec(
        "combining_degree", "x", True,
        lambda s: _bench_combining("degree_count", s),
    ),
    BenchSpec(
        "combining_cc", "x", True,
        lambda s: _bench_combining("connected_components", s),
    ),
    # These two fork their own children (echo process / partition
    # workers); keep them in-parent so pool workers are not nested.
    BenchSpec(
        "pdes_transport", "messages/sec", True, bench_pdes_transport,
        isolate=False,
    ),
    BenchSpec("pdes_e2e", "x", True, bench_pdes_e2e, isolate=False),
    BenchSpec(
        "sweep_fig6_serial", "seconds", False,
        lambda s: _bench_sweep_fig6(None, s), isolate=False,
    ),
    BenchSpec(
        "sweep_fig6_parallel", "seconds", False,
        lambda s: _bench_sweep_fig6(_sweep_parallel_jobs(), s), isolate=False,
    ),
]


# ---------------------------------------------------------------- execution
def perf_cell(*, name: str, smoke: bool, repeat: int) -> dict:
    """One isolated repeat of one benchmark (a pool-worker cell).

    ``repeat`` only distinguishes the jobs; timing cells are never
    cached, and a fresh worker per repeat keeps allocator and cache
    state from bleeding between repeats.
    """
    spec = {s.name: s for s in BENCHMARKS}[name]
    value, params = spec.fn(smoke)
    return {"value": value, "params": params}


def run_benchmark(
    spec: BenchSpec, repeats: int, smoke: bool, pool=None
) -> Dict[str, Any]:
    values: List[float] = []
    params: Dict[str, Any] = {}
    if pool is not None and pool.jobs > 1 and spec.isolate:
        from ..exec import Job

        cells = pool.run(
            [
                Job(
                    fn="repro.bench.perf:perf_cell",
                    kwargs=dict(name=spec.name, smoke=smoke, repeat=r),
                    label=f"perf {spec.name} #{r}",
                    cacheable=False,
                )
                for r in range(repeats)
            ]
        )
        values = [c["value"] for c in cells]
        params = cells[-1]["params"] if cells else {}
    else:
        for _ in range(repeats):
            value, params = spec.fn(smoke)
            values.append(value)
    median, iqr = median_iqr(values)
    return {
        "unit": spec.unit,
        "higher_is_better": spec.higher_is_better,
        "median": median,
        "iqr": iqr,
        "values": values,
        "params": params,
    }


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    """Read a previous BENCH_perf.json to compare against; None if absent."""
    if not os.path.exists(path):
        return None
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema_version {doc.get('schema_version')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    return doc


def speedup(entry: Dict[str, Any], base_median: float) -> Optional[float]:
    """Direction-aware improvement ratio (>1 means this run is faster)."""
    if not base_median or not entry["median"]:
        return None
    if entry["higher_is_better"]:
        return entry["median"] / base_median
    return base_median / entry["median"]


def run_perf(
    out_path: str = "BENCH_perf.json",
    repeats: int = DEFAULT_REPEATS,
    smoke: bool = False,
    baseline_path: Optional[str] = None,
    only: Optional[List[str]] = None,
    pool=None,
) -> int:
    """Run the suite, print a summary table and write ``out_path``."""
    from .report import Table

    if smoke:
        repeats = 1
    specs = BENCHMARKS
    if only:
        unknown = set(only) - {s.name for s in BENCHMARKS}
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {sorted(unknown)}; "
                f"known: {[s.name for s in BENCHMARKS]}"
            )
        specs = [s for s in BENCHMARKS if s.name in only]

    baseline = load_baseline(baseline_path) if baseline_path else None
    base_benchmarks = (baseline or {}).get("benchmarks", {})
    host = host_fingerprint()

    results: Dict[str, Dict[str, Any]] = {}
    speedups: Dict[str, float] = {}
    table = Table(
        title=f"perf harness ({'smoke, ' if smoke else ''}{repeats} repeat(s), "
        "median over repeats)",
        columns=["benchmark", "unit", "median", "iqr", "vs_baseline"],
    )
    for spec in specs:
        entry = run_benchmark(spec, repeats, smoke, pool=pool)
        results[spec.name] = entry
        ratio = None
        base = base_benchmarks.get(spec.name)
        if base:
            if spec.name == "pdes_e2e" and (host.get("cpu_count") or 0) <= 1:
                # The serial/parallel ratio on a single-CPU host is pure
                # fork-and-barrier noise (no parallel hardware to win
                # back the overhead), so a baseline comparison would
                # only report scheduler jitter.  See EXPERIMENTS.md.
                print(
                    "# pdes_e2e: baseline comparison skipped on a "
                    "single-CPU host (ratio is scheduling noise)"
                )
            else:
                ratio = speedup(entry, base.get("median"))
                if ratio is not None:
                    speedups[spec.name] = ratio
        table.add(
            benchmark=spec.name,
            unit=spec.unit,
            median=entry["median"],
            iqr=entry["iqr"],
            vs_baseline=f"{ratio:.2f}x" if ratio is not None else None,
        )

    doc: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "host": host,
        "benchmarks": results,
    }
    if baseline is not None:
        doc["baseline"] = {
            "path": baseline_path,
            "created": baseline.get("created"),
            "benchmarks": {
                name: {"median": b.get("median"), "unit": b.get("unit")}
                for name, b in base_benchmarks.items()
            },
        }
        doc["speedups"] = speedups

    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(table.render())
    print(f"# wrote {out_path}")
    return 0


# --------------------------------------------------------------- perf gate
#: The columnar mailbox bench must beat the scalar-send bench by at
#: least this factor.  The measured ratio is far higher (see
#: BENCH_perf.json); the floor only has to catch the columnar path
#: silently falling off (e.g. a refactor reverting to per-message
#: objects), while staying robust to CI timing noise.
GATE_MIN_COLUMNAR_RATIO = 1.3

#: Minimum fraction of the committed baseline median the fresh
#: ``mailbox_messages`` run must reach when host class and mode match
#: (the ISSUE's ">20% below baseline fails" rule).
GATE_BASELINE_FRACTION = 0.8

#: The shm ring transport must beat the pipe+pickle path by at least
#: this factor in ``pdes_transport`` -- self-normalising (both modes
#: measured in the same run), so it holds on any host and in smoke
#: mode.  The measured ratio is far higher (see BENCH_perf.json); the
#: floor catches the ring path silently degrading to pickling costs.
GATE_MIN_RING_RATIO = 1.5

#: In-network combining must eliminate at least this fraction of
#: forwarded entries *and* remote wire bytes on the representative
#: ``combining_degree`` / ``combining_cc`` panels (the PR 9 acceptance
#: bar).  The reductions are simulated-traffic counters from paired
#: off/on runs in one cell -- deterministic and host-independent -- so
#: the floor is tight without being timing-sensitive.
GATE_MIN_COMBINING_REDUCTION = 0.25

#: Host-fingerprint keys that define a comparable "host class": medians
#: from different CPUs are not comparable and the gate skips them.
_HOST_CLASS_KEYS = ("machine", "cpu_model", "cpu_count", "implementation")


def host_class(fingerprint: Dict[str, Any]) -> Tuple:
    return tuple(fingerprint.get(k) for k in _HOST_CLASS_KEYS)


def run_gate(
    report_path: str,
    baseline_path: Optional[str] = None,
    min_ratio: float = GATE_MIN_COLUMNAR_RATIO,
    fraction: float = GATE_BASELINE_FRACTION,
    min_ring_ratio: float = GATE_MIN_RING_RATIO,
    min_combining_reduction: float = GATE_MIN_COMBINING_REDUCTION,
) -> int:
    """Regression-gate a perf report: ``python -m repro.bench --perf-gate``.

    Four checks, printed and summed into the exit code:

    1. **Columnar ratio floor** (always): ``mailbox_messages`` must be at
       least ``min_ratio`` x ``mailbox_scalar_send`` from the *same*
       report -- self-normalising, so it holds on any host and in smoke
       mode.
    2. **Ring ratio floor** (when ``pdes_transport`` is present): the
       shm ring transport must hold ``min_ring_ratio`` x over the
       pipe+pickle path measured in the same run.
    3. **Combining reduction floor** (when the ``combining_*`` entries
       are present): in-network combining must cut forwarded entries and
       remote wire bytes by >= ``min_combining_reduction`` on both
       representative panels (simulated counters, host-independent).
    4. **Baseline floor** (when comparable): if ``baseline_path`` is
       given and its host class *and* mode match the report's, the fresh
       ``mailbox_messages`` median must be >= ``fraction`` of the
       baseline median.  Mismatched hosts or modes are reported and
       skipped -- absolute medians only compare within a host class.
    """
    report = load_baseline(report_path)
    if report is None:
        print(f"perf gate: FAIL -- report {report_path} not found")
        return 1
    benchmarks = report.get("benchmarks", {})
    failures: List[str] = []
    checks: List[str] = []

    columnar = benchmarks.get("mailbox_messages", {}).get("median")
    scalar = benchmarks.get("mailbox_scalar_send", {}).get("median")
    if not columnar or not scalar:
        failures.append(
            "ratio check needs both mailbox_messages and mailbox_scalar_send "
            f"in {report_path} (run without --perf-only, or include both)"
        )
    else:
        ratio = columnar / scalar
        line = (
            f"columnar/scalar ratio {ratio:.2f}x (floor {min_ratio:.2f}x): "
            f"{columnar:,.0f} vs {scalar:,.0f} messages/sec"
        )
        if ratio < min_ratio:
            failures.append(line)
        else:
            checks.append(line)

    ring = benchmarks.get("pdes_transport", {}).get("params", {})
    ring_ratio = ring.get("ring_vs_pipe")
    if ring_ratio is None:
        checks.append(
            "ring check skipped: no pdes_transport entry in the report "
            "(run without --perf-only, or include it)"
        )
    else:
        line = (
            f"pdes ring/pipe ratio {ring_ratio:.2f}x "
            f"(floor {min_ring_ratio:.2f}x)"
        )
        if ring_ratio < min_ring_ratio:
            failures.append(line)
        else:
            checks.append(line)

    for name in ("combining_degree", "combining_cc"):
        params = benchmarks.get(name, {}).get("params", {})
        fwd_red = params.get("forwarded_reduction")
        wire_red = params.get("wire_reduction")
        if fwd_red is None or wire_red is None:
            checks.append(
                f"combining check skipped: no {name} entry in the report "
                "(run without --perf-only, or include it)"
            )
            continue
        line = (
            f"{name} reductions fwd {fwd_red:.0%} / wire {wire_red:.0%} "
            f"(floor {min_combining_reduction:.0%})"
        )
        if min(fwd_red, wire_red) < min_combining_reduction:
            failures.append(line)
        else:
            checks.append(line)

    baseline = load_baseline(baseline_path) if baseline_path else None
    if baseline is not None:
        same_host = host_class(baseline.get("host", {})) == host_class(
            report.get("host", {})
        )
        same_mode = baseline.get("mode") == report.get("mode")
        base_med = baseline.get("benchmarks", {}).get(
            "mailbox_messages", {}
        ).get("median")
        if not same_host or not same_mode:
            why = "host class" if not same_host else "mode"
            checks.append(
                f"baseline check skipped: {why} differs from {baseline_path} "
                "(absolute medians are not comparable)"
            )
        elif columnar and base_med:
            frac = columnar / base_med
            line = (
                f"mailbox_messages at {frac:.2f}x of baseline median "
                f"{base_med:,.0f} (floor {fraction:.2f}x)"
            )
            if frac < fraction:
                failures.append(line)
            else:
                checks.append(line)

    for line in checks:
        print(f"perf gate: ok   -- {line}")
    for line in failures:
        print(f"perf gate: FAIL -- {line}")
    print(f"perf gate: {'FAIL' if failures else 'PASS'} ({report_path})")
    return 1 if failures else 0
