"""Fig 7: connected-components scaling on RMAT graphs with delegates.

Paper setup (scaled down):

* weak scaling (7a): 2^26 vertices and 2^30 edges per node, RMAT
  (Graph500), delegate threshold scaled with the expected largest degree;
  also reports the growth in broadcast operations.
* strong scaling (7b): 2^30 vertices, 2^34 edges total.

Expected shape: NoRoute worst; NodeLocal/NodeRemote best at small N;
NLNR wins at scale; broadcast count grows with weak-scaled graph size.

Cells (:func:`weak_cell` / :func:`strong_cell`) are independent
simulations rebuilt from scalar kwargs and submitted through
:mod:`repro.exec`; aggregation order is the sweep order, so parallel
tables match serial ones byte for byte.
"""

from __future__ import annotations

import math
from typing import Optional

from ..apps import make_connected_components
from ..exec import Job, Pool, run_jobs
from ..graph import GRAPH500_PARAMS, rmat_stream, scaled_delegate_threshold
from ..machine import bench_machine
from .harness import SweepConfig, efficiency, run_ygm, schemes_for
from .report import Table


def _threshold(scale: int, total_edges: int, fraction: float) -> float:
    a, b = GRAPH500_PARAMS[0], GRAPH500_PARAMS[1]
    return scaled_delegate_threshold(scale, total_edges, a, b, fraction=fraction)


def cc_cell(
    *,
    nodes: int,
    scheme: str,
    cores_per_node: int,
    mailbox_capacity: int,
    scale: int,
    edges_per_rank: int,
    threshold: float,
    batch_size: int,
    seed: int,
    pdes_workers: int = 0,
) -> dict:
    """One (nodes, scheme) connected-components cell (both panels)."""
    stream = rmat_stream(scale, edges_per_rank, seed=seed)
    res = run_ygm(
        make_connected_components(
            stream, delegate_threshold=threshold, batch_size=batch_size
        ),
        bench_machine(nodes, cores_per_node=cores_per_node),
        scheme,
        mailbox_capacity,
        seed=seed,
        pdes_workers=pdes_workers or None,
    )
    return {
        "seconds": res.elapsed,
        "passes": res.values[0].passes,
        "delegates": res.values[0].delegate_count,
        "broadcasts": res.mailbox_stats.bcasts_initiated,
    }


def run_weak(
    sweep: Optional[SweepConfig] = None,
    verts_per_node_log2: int = 9,
    edges_per_node_log2: int = 12,
    delegate_fraction: float = 0.05,
    batch_size: int = 2**12,
    pool: Optional[Pool] = None,
    pdes_workers: int = 0,
) -> Table:
    sweep = sweep or SweepConfig.quick()
    table = Table(
        title="Fig 7a: connected components, weak scaling "
        f"(2^{verts_per_node_log2} verts/node, 2^{edges_per_node_log2} edges/node, "
        f"RMAT {GRAPH500_PARAMS}, C={sweep.cores_per_node})",
        columns=[
            "nodes", "scheme", "seconds", "efficiency",
            "passes", "delegates", "broadcasts",
        ],
    )
    grid = []
    jobs = []
    for nodes in sweep.node_counts:
        scale = verts_per_node_log2 + max(0, int(math.log2(nodes)))
        total_edges = (1 << edges_per_node_log2) * nodes
        edges_per_rank = max(1, total_edges // (nodes * sweep.cores_per_node))
        threshold = _threshold(scale, total_edges, delegate_fraction)
        for scheme in schemes_for(nodes, sweep.cores_per_node):
            grid.append((nodes, scheme))
            jobs.append(
                Job(
                    fn="repro.bench.fig7:cc_cell",
                    kwargs=dict(
                        nodes=nodes,
                        scheme=scheme,
                        cores_per_node=sweep.cores_per_node,
                        mailbox_capacity=sweep.mailbox_capacity,
                        scale=scale,
                        edges_per_rank=edges_per_rank,
                        threshold=threshold,
                        batch_size=batch_size,
                        seed=sweep.seed,
                        pdes_workers=pdes_workers,
                    ),
                    label=f"fig7a N={nodes} {scheme}",
                )
            )
    cells = run_jobs(jobs, pool)
    base: dict = {}
    for (nodes, scheme), cell in zip(grid, cells):
        base.setdefault(scheme, (cell["seconds"], nodes))
        b_el, b_n = base[scheme]
        table.add(
            nodes=nodes,
            scheme=scheme,
            seconds=cell["seconds"],
            efficiency=efficiency(b_el, b_n, cell["seconds"], nodes, weak=True),
            passes=cell["passes"],
            delegates=cell["delegates"],
            broadcasts=cell["broadcasts"],
        )
    table.note(
        "delegate threshold scaled with the expected largest RMAT degree "
        "(Section VI-B); broadcasts grow with graph size as in the paper"
    )
    return table


def run_strong(
    sweep: Optional[SweepConfig] = None,
    total_verts_log2: int = 12,
    total_edges_log2: int = 15,
    delegate_fraction: float = 0.05,
    batch_size: int = 2**12,
    pool: Optional[Pool] = None,
    pdes_workers: int = 0,
) -> Table:
    sweep = sweep or SweepConfig.quick()
    table = Table(
        title="Fig 7b: connected components, strong scaling "
        f"(2^{total_verts_log2} vertices, 2^{total_edges_log2} edges total, "
        f"C={sweep.cores_per_node})",
        columns=["nodes", "scheme", "seconds", "efficiency", "passes", "broadcasts"],
    )
    scale = total_verts_log2
    total_edges = 1 << total_edges_log2
    threshold = _threshold(scale, total_edges, delegate_fraction)
    grid = []
    jobs = []
    for nodes in sweep.node_counts:
        nranks = nodes * sweep.cores_per_node
        for scheme in schemes_for(nodes, sweep.cores_per_node):
            grid.append((nodes, scheme))
            jobs.append(
                Job(
                    fn="repro.bench.fig7:cc_cell",
                    kwargs=dict(
                        nodes=nodes,
                        scheme=scheme,
                        cores_per_node=sweep.cores_per_node,
                        mailbox_capacity=sweep.mailbox_capacity,
                        scale=scale,
                        edges_per_rank=max(1, total_edges // nranks),
                        threshold=threshold,
                        batch_size=batch_size,
                        seed=sweep.seed,
                        pdes_workers=pdes_workers,
                    ),
                    label=f"fig7b N={nodes} {scheme}",
                )
            )
    cells = run_jobs(jobs, pool)
    base: dict = {}
    for (nodes, scheme), cell in zip(grid, cells):
        base.setdefault(scheme, (cell["seconds"], nodes))
        b_el, b_n = base[scheme]
        table.add(
            nodes=nodes,
            scheme=scheme,
            seconds=cell["seconds"],
            efficiency=efficiency(b_el, b_n, cell["seconds"], nodes, weak=False),
            passes=cell["passes"],
            broadcasts=cell["broadcasts"],
        )
    return table
