"""Fig 5: point-to-point bandwidth vs message size.

The paper measures two-rank bandwidth on Quartz (MVAPICH 2.3 over
Omni-Path) and annotates where each routing scheme's *average message
size* falls for a fixed send volume, given 32 cores/node.  We reproduce
both: the bandwidth curve is measured end-to-end through the simulated
MPI layer (not just evaluated from the model formula), and the markers
use the Section III-E average-size analysis O(V/NC), O(V/N), O(VC/N).

Every point of the curve is an independent two-rank simulation, so the
sweep (and the marker measurements) fan out through :mod:`repro.exec`
as :func:`bandwidth_cell` jobs.
"""

from __future__ import annotations

from typing import List, Optional

from ..exec import Job, Pool, run_jobs
from ..machine import KiB, MiB, bench_machine
from ..mpi import HEADER_BYTES, World
from .report import Table

#: Sweep sizes: powers of two from 1 B to 16 MiB, plus the points just
#: around the eager threshold where the protocol switch shows.
def sweep_sizes() -> List[int]:
    sizes = [2**k for k in range(0, 25)]
    sizes += [16 * KiB - 1, 16 * KiB + 1]
    return sorted(set(sizes))


def measure_bandwidth(nbytes: int, repeats: int = 4) -> float:
    """End-to-end bandwidth (B/s) between two ranks on different nodes,
    measured by actually running the simulated transport."""

    def rank_main(ctx):
        payload = b""  # content is irrelevant; size is passed explicitly
        body = max(0, nbytes - HEADER_BYTES)
        if ctx.rank == 0:
            for i in range(repeats):
                yield from ctx.comm.send(1, payload, tag=i, nbytes=body)
                # Wait for the ack so transfers do not pipeline.
                yield from ctx.comm.recv(source=1, tag=i)
            return None
        start = None
        for i in range(repeats):
            yield from ctx.comm.recv(source=0, tag=i)
            if start is None:
                start = ctx.sim.now
            yield from ctx.comm.send(0, b"", tag=i, nbytes=0)
        return ctx.sim.now

    world = World(bench_machine(2, cores_per_node=1))
    res = world.run(rank_main)
    elapsed = res.values[1]
    # One-way time per transfer, excluding the zero-byte ack, measured as
    # round-trip halves would be noisy; instead time the full exchange and
    # subtract the ack cost analytically.
    net = world.machine.config.net
    ack = net.remote_time_uncontended(HEADER_BYTES)
    per_transfer = elapsed / repeats - ack
    return nbytes / per_transfer


def bandwidth_cell(*, nbytes: int, repeats: int = 4) -> dict:
    """One point of the bandwidth curve (a two-rank simulation)."""
    return {"bandwidth": measure_bandwidth(nbytes, repeats=repeats)}


def run(
    quick: bool = True,
    cores_for_markers: int = 32,
    pool: Optional[Pool] = None,
) -> Table:
    table = Table(
        title="Fig 5: network bandwidth between two ranks vs message size",
        columns=["bytes", "bandwidth_MB_s", "protocol"],
    )
    net = bench_machine(2).net
    sizes = sweep_sizes()
    if quick:
        sizes = [s for s in sizes if s >= 8]
    # Scheme markers for a fixed volume V (paper annotates NoRoute, Node
    # Remote, NLNR assuming 32 cores/node).
    V = 16 * MiB
    N = 64
    C = cores_for_markers
    markers = {
        "noroute": V / ((N - 1) * C),
        "node_remote": V / (N - 1),
        "nlnr": V * C / N,
    }
    jobs = [
        Job(
            fn="repro.bench.fig5:bandwidth_cell",
            kwargs={"nbytes": size},
            label=f"fig5 {size}B",
        )
        for size in sizes
    ] + [
        Job(
            fn="repro.bench.fig5:bandwidth_cell",
            kwargs={"nbytes": int(avg)},
            label=f"fig5 marker {scheme}",
        )
        for scheme, avg in markers.items()
    ]
    cells = run_jobs(jobs, pool)
    for size, cell in zip(sizes, cells):
        table.add(
            bytes=size,
            bandwidth_MB_s=cell["bandwidth"] / 1e6,
            protocol="rendezvous" if net.is_rendezvous(size) else "eager",
        )
    for (scheme, avg), cell in zip(markers.items(), cells[len(sizes):]):
        table.note(
            f"marker {scheme}: avg message size {avg / KiB:.1f} KiB for "
            f"V={V // MiB} MiB, N={N}, C={C} "
            f"-> {cell['bandwidth'] / 1e6:.1f} MB/s"
        )
    table.note(
        f"eager->rendezvous switch at {net.eager_threshold // KiB} KiB "
        "(downward jump, as in the paper)"
    )
    return table
