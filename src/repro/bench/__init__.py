"""The per-figure experiment harness (see DESIGN.md section 3).

Usage: ``python -m repro.bench --fig 6a`` or the ``repro-bench`` script.
"""

from .harness import SweepConfig, efficiency, run_mpi, run_ygm, schemes_for
from .report import Table

__all__ = ["SweepConfig", "Table", "efficiency", "run_mpi", "run_ygm", "schemes_for"]
