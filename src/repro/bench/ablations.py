"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures and probe *why* the results look the
way they do:

* mailbox-capacity sweep -- coalescing effectiveness vs memory (explains
  the Fig 8d requirement that mailbox size scale with N),
* cores-per-node sweep -- the Section III-E "lateral distance grows with
  C" argument,
* eager-threshold sweep -- sensitivity to the protocol switch,
* NLNR vs hybrid NLNR -- the Section VII MPI+threads projection,
* straggler imbalance -- YGM's pseudo-asynchrony vs the BSP baseline
  (the introduction's motivating scenario),
* in-network combining -- combining ratio vs achieved speedup across
  key-space concentrations and routing schemes (the NAPSpMV-style
  aggregation PR 9 adds).

All sweeps share one parametrized degree-counting cell
(:func:`degree_cell`); the straggler comparison has its own cells.
Cells go through :mod:`repro.exec`, so ablations parallelize and cache
like the figures do.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..apps import make_connected_components, make_degree_counting
from ..baselines import make_bsp_degree_counting
from ..exec import Job, Pool, run_jobs
from ..graph import er_stream, rmat_stream
from ..machine import bench_machine
from .harness import SweepConfig, run_mpi, run_ygm
from .report import Table


def degree_cell(
    *,
    nodes: int,
    cores: int,
    scheme: str,
    capacity: int,
    batch_size: int,
    edges_per_rank: int,
    num_vertices: int,
    seed: int,
    eager_threshold: Optional[int] = None,
) -> dict:
    """One degree-counting run, returning every stat the ablations read."""
    stream = er_stream(
        num_vertices=num_vertices, edges_per_rank=edges_per_rank, seed=seed
    )
    overrides = {}
    if eager_threshold is not None:
        overrides["eager_threshold"] = eager_threshold
    machine = bench_machine(nodes, cores_per_node=cores, **overrides)
    res = run_ygm(
        make_degree_counting(stream, batch_size=batch_size),
        machine,
        scheme,
        capacity,
        seed=seed,
    )
    stats = res.mailbox_stats
    return {
        "seconds": res.elapsed,
        "avg_remote_pkt_B": stats.avg_remote_packet_bytes,
        "flushes": stats.flushes,
        "local_bytes": stats.local_bytes_sent,
        "remote_bytes": stats.remote_bytes_sent,
    }


def _degree_job(label: str, **kwargs) -> Job:
    return Job(fn="repro.bench.ablations:degree_cell", kwargs=kwargs, label=label)


def run_capacity_sweep(
    nodes: int = 8,
    cores: int = 4,
    capacities: Sequence[int] = (2**6, 2**8, 2**10, 2**12, 2**14),
    edges_per_rank: int = 2**12,
    scheme: str = "node_remote",
    seed: int = 0,
    pool: Optional[Pool] = None,
) -> Table:
    """Mailbox capacity vs runtime: small mailboxes flush tiny packets.

    The application feeds the mailbox in small increments (batch 32) so
    that the mailbox *capacity* -- not the application batch size --
    governs the flush granularity, as with the paper's per-message sends.
    """
    table = Table(
        title=f"Ablation: mailbox capacity sweep ({scheme}, N={nodes}, C={cores})",
        columns=["capacity", "seconds", "avg_remote_pkt_B", "flushes"],
    )
    cells = run_jobs(
        [
            _degree_job(
                f"ablation capacity={cap}",
                nodes=nodes,
                cores=cores,
                scheme=scheme,
                capacity=cap,
                batch_size=32,
                edges_per_rank=edges_per_rank,
                num_vertices=1024 * nodes * cores,
                seed=seed,
            )
            for cap in capacities
        ],
        pool,
    )
    for cap, cell in zip(capacities, cells):
        table.add(
            capacity=cap,
            seconds=cell["seconds"],
            avg_remote_pkt_B=cell["avg_remote_pkt_B"],
            flushes=cell["flushes"],
        )
    table.note("larger mailboxes -> bigger packets -> less per-packet overhead")
    return table


def run_cores_sweep(
    nodes: int = 16,
    cores_options: Sequence[int] = (2, 4, 8),
    edges_per_rank: int = 2**12,
    capacity: int = 2**12,
    seed: int = 0,
    pool: Optional[Pool] = None,
) -> Table:
    """Section III-E: the NLNR advantage over NodeRemote grows with C."""
    table = Table(
        title=f"Ablation: cores-per-node sweep (N={nodes})",
        columns=["cores", "scheme", "seconds", "avg_remote_pkt_B"],
    )
    grid = [
        (cores, scheme)
        for cores in cores_options
        for scheme in ("node_remote", "nlnr")
    ]
    cells = run_jobs(
        [
            _degree_job(
                f"ablation cores={cores} {scheme}",
                nodes=nodes,
                cores=cores,
                scheme=scheme,
                capacity=capacity,
                batch_size=2**12,
                edges_per_rank=edges_per_rank,
                num_vertices=1024 * nodes * cores,
                seed=seed,
            )
            for cores, scheme in grid
        ],
        pool,
    )
    for (cores, scheme), cell in zip(grid, cells):
        table.add(
            cores=cores,
            scheme=scheme,
            seconds=cell["seconds"],
            avg_remote_pkt_B=cell["avg_remote_pkt_B"],
        )
    table.note("NLNR's avg packet is C x NodeRemote's: the gap widens with C")
    return table


def run_eager_threshold_sweep(
    thresholds: Sequence[int] = (2**12, 2**14, 2**16, 2**18),
    nodes: int = 8,
    cores: int = 4,
    capacity: int = 2**12,
    edges_per_rank: int = 2**12,
    seed: int = 0,
    pool: Optional[Pool] = None,
) -> Table:
    """Where the protocol switch sits changes which scheme's packets ride
    the fast path."""
    table = Table(
        title=f"Ablation: eager/rendezvous threshold sweep (N={nodes}, C={cores})",
        columns=["threshold", "scheme", "seconds"],
    )
    grid = [
        (threshold, scheme)
        for threshold in thresholds
        for scheme in ("node_remote", "nlnr")
    ]
    cells = run_jobs(
        [
            _degree_job(
                f"ablation eager={threshold} {scheme}",
                nodes=nodes,
                cores=cores,
                scheme=scheme,
                capacity=capacity,
                batch_size=2**12,
                edges_per_rank=edges_per_rank,
                num_vertices=1024 * nodes * cores,
                seed=seed,
                eager_threshold=threshold,
            )
            for threshold, scheme in grid
        ],
        pool,
    )
    for (threshold, scheme), cell in zip(grid, cells):
        table.add(threshold=threshold, scheme=scheme, seconds=cell["seconds"])
    return table


def run_hybrid_comparison(
    nodes: int = 8,
    cores: int = 8,
    capacity: int = 2**12,
    edges_per_rank: int = 2**12,
    seed: int = 0,
    pool: Optional[Pool] = None,
) -> Table:
    """Section VII: hybrid MPI+threads NLNR removes on-node copy costs."""
    table = Table(
        title=f"Ablation: NLNR vs hybrid (free local hops), N={nodes}, C={cores}",
        columns=["scheme", "seconds", "local_bytes", "remote_bytes"],
    )
    schemes = ("node_local", "node_remote", "nlnr", "nlnr_hybrid")
    cells = run_jobs(
        [
            _degree_job(
                f"ablation hybrid {scheme}",
                nodes=nodes,
                cores=cores,
                scheme=scheme,
                capacity=capacity,
                batch_size=2**12,
                edges_per_rank=edges_per_rank,
                num_vertices=1024 * nodes * cores,
                seed=seed,
            )
            for scheme in schemes
        ],
        pool,
    )
    for scheme, cell in zip(schemes, cells):
        table.add(
            scheme=scheme,
            seconds=cell["seconds"],
            local_bytes=cell["local_bytes"],
            remote_bytes=cell["remote_bytes"],
        )
    return table


def bsp_straggler_cell(
    *,
    nodes: int,
    cores: int,
    edges_per_rank: int,
    batch_size: int,
    straggler_delay: float,
    seed: int,
) -> dict:
    """The BSP baseline under a straggler: rank 0 pays extra per batch."""
    stream = er_stream(
        num_vertices=1024 * nodes * cores, edges_per_rank=edges_per_rank, seed=seed
    )

    def skew(rank: int, step: int) -> float:
        return straggler_delay if rank == 0 else 0.0

    # BSP: the exchange is inside every superstep, so a rank's own work
    # is not done until the last superstep completes -- its finish time.
    res = run_mpi(
        make_bsp_degree_counting(stream, batch_size=batch_size, compute_skew=skew),
        bench_machine(nodes, cores_per_node=cores),
        seed=seed,
    )
    return {
        "makespan": res.elapsed,
        "avg_work_done_others": float(np.mean(res.finish_times[1:])),
    }


def ygm_straggler_cell(
    *,
    nodes: int,
    cores: int,
    scheme: str,
    capacity: int,
    edges_per_rank: int,
    batch_size: int,
    straggler_delay: float,
    seed: int,
) -> dict:
    """YGM under the same straggler, recording own-work completion."""
    stream = er_stream(
        num_vertices=1024 * nodes * cores, edges_per_rank=edges_per_rank, seed=seed
    )
    work_done = np.zeros(nodes * cores)

    # The degree-count loop is inlined (rather than reusing
    # make_degree_counting) so the straggler's per-batch delay can be
    # interposed and the own-work completion time recorded.
    def ygm_app(ctx):
        from repro.apps.degree_count import DEGREE_SPEC
        from repro.graph.partition import CyclicPartition

        part = CyclicPartition(stream.num_vertices, ctx.nranks)
        degrees = np.zeros(part.local_count(ctx.rank), dtype=np.int64)

        def on_batch(b):
            ids = part.local_id_vec(b["vertex"].astype(np.int64))
            degrees[:] += np.bincount(ids, minlength=len(degrees))

        mb = ctx.mailbox(recv_batch=on_batch, capacity=capacity)
        for u, v in stream.batches(ctx.rank, batch_size):
            yield ctx.compute(len(u) * ctx.machine.config.compute.per_edge_gen)
            yield ctx.compute(straggler_delay if ctx.rank == 0 else 0.0)
            verts = np.concatenate((u, v))
            yield from mb.send_batch(
                part.owner_vec(verts),
                DEGREE_SPEC.build(vertex=verts.astype("u8")),
                spec=DEGREE_SPEC,
            )
        yield from mb.flush()
        work_done[ctx.rank] = ctx.sim.now  # own work complete here
        yield from mb.wait_empty()
        return degrees

    res = run_ygm(
        ygm_app, bench_machine(nodes, cores_per_node=cores), scheme, capacity,
        seed=seed,
    )
    return {
        "makespan": res.elapsed,
        "avg_work_done_others": float(np.mean(work_done[1:])),
    }


def run_straggler_comparison(
    nodes: int = 4,
    cores: int = 4,
    edges_per_rank: int = 2**12,
    capacity: int = 2**10,
    straggler_delay: float = 5e-4,
    seed: int = 0,
    pool: Optional[Pool] = None,
) -> Table:
    """The motivating scenario: one slow rank.

    Under BSP every rank idles at every superstep waiting for the
    straggler, so nobody's *own work* completes before the straggler
    does.  Under YGM the other ranks finish queueing and flushing their
    own messages early -- their cores are free for other computation and
    they merely remain available as routing intermediaries inside
    ``wait_empty`` ("cores participating ... can enter the protocol when
    ready", Abstract).  We therefore report, besides the makespan, the
    mean time at which *non-straggler* ranks finished their own work
    (their last send, before the global drain).
    """
    table = Table(
        title=f"Ablation: straggler imbalance, BSP vs YGM "
        f"(N={nodes}, C={cores}, straggler +{straggler_delay}s/batch)",
        columns=["impl", "makespan", "avg_work_done_others"],
    )
    batch = 2**10
    common = dict(
        nodes=nodes,
        cores=cores,
        edges_per_rank=edges_per_rank,
        batch_size=batch,
        straggler_delay=straggler_delay,
        seed=seed,
    )
    schemes = ("node_remote", "nlnr")
    jobs = [
        Job(
            fn="repro.bench.ablations:bsp_straggler_cell",
            kwargs=common,
            label="ablation straggler bsp",
        )
    ] + [
        Job(
            fn="repro.bench.ablations:ygm_straggler_cell",
            kwargs=dict(common, scheme=scheme, capacity=capacity),
            label=f"ablation straggler {scheme}",
        )
        for scheme in schemes
    ]
    cells = run_jobs(jobs, pool)
    impls = ["bsp_alltoallv"] + [f"ygm/{s}" for s in schemes]
    for impl, cell in zip(impls, cells):
        table.add(
            impl=impl,
            makespan=cell["makespan"],
            avg_work_done_others=cell["avg_work_done_others"],
        )
    table.note(
        "avg_work_done_others: mean time non-straggler ranks finished their "
        "own sends; BSP couples it to the straggler, YGM does not"
    )
    return table


def combining_cell(
    *,
    app: str,
    nodes: int,
    cores: int,
    scheme: str,
    capacity: int,
    batch_size: int,
    edges_per_rank: int,
    num_vertices: int,
    seed: int,
    combining: bool,
) -> dict:
    """One combining-ablation run (degree counting or CC), with the
    message-reduction counters the sweep derives its ratios from."""
    if app == "degree_count":
        stream = er_stream(
            num_vertices=num_vertices, edges_per_rank=edges_per_rank, seed=seed
        )
        make = make_degree_counting(
            stream, batch_size=batch_size, capacity=capacity,
            combining=combining,
        )
    elif app == "connected_components":
        stream = rmat_stream(
            num_vertices.bit_length() - 1, edges_per_rank, seed=seed
        )
        # Delegate only the most extreme hubs: everything below travels
        # the point-to-point mailbox the combiner attaches to, which is
        # where combining competes with (rather than duplicates) the
        # delegate mechanism for hub-update pressure.
        mean_degree = (
            2.0 * edges_per_rank * nodes * cores / stream.num_vertices
        )
        make = make_connected_components(
            stream,
            delegate_threshold=16.0 * mean_degree,
            batch_size=batch_size,
            capacity=capacity,
            combining=combining,
        )
    else:
        raise ValueError(f"unknown combining-ablation app {app!r}")
    res = run_ygm(
        make, bench_machine(nodes, cores_per_node=cores), scheme, capacity,
        seed=seed,
    )
    stats = res.mailbox_stats
    return {
        "seconds": res.elapsed,
        "entries_forwarded": stats.entries_forwarded,
        "remote_bytes": stats.remote_bytes_sent,
        "entries_combined": stats.entries_combined,
        "app_messages_sent": stats.app_messages_sent,
    }


def run_combining_sweep(
    nodes: int = 4,
    cores: int = 4,
    capacity: int = 2**8,
    edges_per_rank: int = 2**11,
    schemes: Sequence[str] = ("nlnr", "node_aware"),
    seed: int = 0,
    pool: Optional[Pool] = None,
) -> Table:
    """Combining ratio vs achieved speedup (the PR 9 ablation).

    The degree panels shrink the vertex set at a fixed edge count, so
    the same traffic concentrates onto fewer keys: the fraction of
    records the in-network combiner can eliminate (``combine_ratio``)
    rises across the rows, and with it the forwarded-entry and wire-byte
    reductions and the simulated-time speedup.  The CC panel is the
    fig7-style RMAT workload, whose hub-skewed label updates combine
    naturally.  Each row pairs a combining-off and a combining-on run of
    the identical configuration.
    """
    nranks = nodes * cores
    table = Table(
        title=f"Ablation: in-network combining ratio vs speedup "
        f"(N={nodes}, C={cores})",
        columns=[
            "app", "scheme", "verts", "combine_ratio",
            "fwd_reduction", "wire_reduction", "speedup",
        ],
    )
    # (app, num_vertices): degree panels sweep key concentration; the
    # RMAT panel's vertex count picks the generator scale.
    panels = [
        ("degree_count", 16 * nranks),
        ("degree_count", 64 * nranks),
        ("degree_count", 256 * nranks),
        ("connected_components", 1024),
    ]
    grid = [
        (app, verts, scheme, combining)
        for app, verts in panels
        for scheme in schemes
        for combining in (False, True)
    ]
    cells = run_jobs(
        [
            Job(
                fn="repro.bench.ablations:combining_cell",
                kwargs=dict(
                    app=app,
                    nodes=nodes,
                    cores=cores,
                    scheme=scheme,
                    capacity=capacity,
                    batch_size=2**10,
                    edges_per_rank=edges_per_rank,
                    num_vertices=verts,
                    seed=seed,
                    combining=combining,
                ),
                label=f"ablation combining {app}/{scheme}/v{verts}"
                + ("/on" if combining else "/off"),
            )
            for app, verts, scheme, combining in grid
        ],
        pool,
    )
    by_key = {key: cell for key, cell in zip(grid, cells)}
    for app, verts in panels:
        for scheme in schemes:
            off = by_key[(app, verts, scheme, False)]
            on = by_key[(app, verts, scheme, True)]
            posted = on["app_messages_sent"]
            table.add(
                app=app,
                scheme=scheme,
                verts=verts,
                combine_ratio=(
                    on["entries_combined"] / posted if posted else 0.0
                ),
                fwd_reduction=1.0
                - (
                    on["entries_forwarded"] / off["entries_forwarded"]
                    if off["entries_forwarded"]
                    else 1.0
                ),
                wire_reduction=1.0
                - (
                    on["remote_bytes"] / off["remote_bytes"]
                    if off["remote_bytes"]
                    else 1.0
                ),
                speedup=(
                    off["seconds"] / on["seconds"] if on["seconds"] else 0.0
                ),
            )
    table.note(
        "combine_ratio: fraction of posted records merged away in-network; "
        "speedup is simulated seconds, combining off/on"
    )
    return table
