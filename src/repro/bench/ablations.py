"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures and probe *why* the results look the
way they do:

* mailbox-capacity sweep -- coalescing effectiveness vs memory (explains
  the Fig 8d requirement that mailbox size scale with N),
* cores-per-node sweep -- the Section III-E "lateral distance grows with
  C" argument,
* eager-threshold sweep -- sensitivity to the protocol switch,
* NLNR vs hybrid NLNR -- the Section VII MPI+threads projection,
* straggler imbalance -- YGM's pseudo-asynchrony vs the BSP baseline
  (the introduction's motivating scenario).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..apps import make_degree_counting
from ..baselines import make_bsp_degree_counting
from ..graph import er_stream
from .harness import SweepConfig, run_mpi, run_ygm
from .report import Table


def run_capacity_sweep(
    nodes: int = 8,
    cores: int = 4,
    capacities: Sequence[int] = (2**6, 2**8, 2**10, 2**12, 2**14),
    edges_per_rank: int = 2**12,
    scheme: str = "node_remote",
    seed: int = 0,
) -> Table:
    """Mailbox capacity vs runtime: small mailboxes flush tiny packets.

    The application feeds the mailbox in small increments (batch 32) so
    that the mailbox *capacity* -- not the application batch size --
    governs the flush granularity, as with the paper's per-message sends.
    """
    sweep = SweepConfig(cores_per_node=cores, node_counts=(nodes,), mailbox_capacity=0)
    table = Table(
        title=f"Ablation: mailbox capacity sweep ({scheme}, N={nodes}, C={cores})",
        columns=["capacity", "seconds", "avg_remote_pkt_B", "flushes"],
    )
    stream = er_stream(
        num_vertices=1024 * nodes * cores, edges_per_rank=edges_per_rank, seed=seed
    )
    for cap in capacities:
        res = run_ygm(
            make_degree_counting(stream, batch_size=32),
            sweep.machine(nodes),
            scheme,
            cap,
            seed=seed,
        )
        table.add(
            capacity=cap,
            seconds=res.elapsed,
            avg_remote_pkt_B=res.mailbox_stats.avg_remote_packet_bytes,
            flushes=res.mailbox_stats.flushes,
        )
    table.note("larger mailboxes -> bigger packets -> less per-packet overhead")
    return table


def run_cores_sweep(
    nodes: int = 16,
    cores_options: Sequence[int] = (2, 4, 8),
    edges_per_rank: int = 2**12,
    capacity: int = 2**12,
    seed: int = 0,
) -> Table:
    """Section III-E: the NLNR advantage over NodeRemote grows with C."""
    table = Table(
        title=f"Ablation: cores-per-node sweep (N={nodes})",
        columns=["cores", "scheme", "seconds", "avg_remote_pkt_B"],
    )
    for cores in cores_options:
        sweep = SweepConfig(
            cores_per_node=cores, node_counts=(nodes,), mailbox_capacity=capacity
        )
        stream = er_stream(
            num_vertices=1024 * nodes * cores, edges_per_rank=edges_per_rank, seed=seed
        )
        for scheme in ("node_remote", "nlnr"):
            res = run_ygm(
                make_degree_counting(stream, batch_size=2**12),
                sweep.machine(nodes),
                scheme,
                capacity,
                seed=seed,
            )
            table.add(
                cores=cores,
                scheme=scheme,
                seconds=res.elapsed,
                avg_remote_pkt_B=res.mailbox_stats.avg_remote_packet_bytes,
            )
    table.note("NLNR's avg packet is C x NodeRemote's: the gap widens with C")
    return table


def run_eager_threshold_sweep(
    thresholds: Sequence[int] = (2**12, 2**14, 2**16, 2**18),
    nodes: int = 8,
    cores: int = 4,
    capacity: int = 2**12,
    edges_per_rank: int = 2**12,
    seed: int = 0,
) -> Table:
    """Where the protocol switch sits changes which scheme's packets ride
    the fast path."""
    table = Table(
        title=f"Ablation: eager/rendezvous threshold sweep (N={nodes}, C={cores})",
        columns=["threshold", "scheme", "seconds"],
    )
    stream = er_stream(
        num_vertices=1024 * nodes * cores, edges_per_rank=edges_per_rank, seed=seed
    )
    for threshold in thresholds:
        for scheme in ("node_remote", "nlnr"):
            sweep = SweepConfig(
                cores_per_node=cores, node_counts=(nodes,), mailbox_capacity=capacity
            )
            machine = sweep.machine(nodes, eager_threshold=threshold)
            res = run_ygm(
                make_degree_counting(stream, batch_size=2**12),
                machine,
                scheme,
                capacity,
                seed=seed,
            )
            table.add(threshold=threshold, scheme=scheme, seconds=res.elapsed)
    return table


def run_hybrid_comparison(
    nodes: int = 8,
    cores: int = 8,
    capacity: int = 2**12,
    edges_per_rank: int = 2**12,
    seed: int = 0,
) -> Table:
    """Section VII: hybrid MPI+threads NLNR removes on-node copy costs."""
    table = Table(
        title=f"Ablation: NLNR vs hybrid (free local hops), N={nodes}, C={cores}",
        columns=["scheme", "seconds", "local_bytes", "remote_bytes"],
    )
    sweep = SweepConfig(
        cores_per_node=cores, node_counts=(nodes,), mailbox_capacity=capacity
    )
    stream = er_stream(
        num_vertices=1024 * nodes * cores, edges_per_rank=edges_per_rank, seed=seed
    )
    for scheme in ("node_local", "node_remote", "nlnr", "nlnr_hybrid"):
        res = run_ygm(
            make_degree_counting(stream, batch_size=2**12),
            sweep.machine(nodes),
            scheme,
            capacity,
            seed=seed,
        )
        table.add(
            scheme=scheme,
            seconds=res.elapsed,
            local_bytes=res.mailbox_stats.local_bytes_sent,
            remote_bytes=res.mailbox_stats.remote_bytes_sent,
        )
    return table


def run_straggler_comparison(
    nodes: int = 4,
    cores: int = 4,
    edges_per_rank: int = 2**12,
    capacity: int = 2**10,
    straggler_delay: float = 5e-4,
    seed: int = 0,
) -> Table:
    """The motivating scenario: one slow rank.

    Under BSP every rank idles at every superstep waiting for the
    straggler, so nobody's *own work* completes before the straggler
    does.  Under YGM the other ranks finish queueing and flushing their
    own messages early -- their cores are free for other computation and
    they merely remain available as routing intermediaries inside
    ``wait_empty`` ("cores participating ... can enter the protocol when
    ready", Abstract).  We therefore report, besides the makespan, the
    mean time at which *non-straggler* ranks finished their own work
    (their last send, before the global drain).
    """
    table = Table(
        title=f"Ablation: straggler imbalance, BSP vs YGM "
        f"(N={nodes}, C={cores}, straggler +{straggler_delay}s/batch)",
        columns=["impl", "makespan", "avg_work_done_others"],
    )
    stream = er_stream(
        num_vertices=1024 * nodes * cores, edges_per_rank=edges_per_rank, seed=seed
    )
    sweep = SweepConfig(
        cores_per_node=cores, node_counts=(nodes,), mailbox_capacity=capacity
    )
    batch = 2**10

    def skew(rank: int, step: int) -> float:
        return straggler_delay if rank == 0 else 0.0

    # BSP: the exchange is inside every superstep, so a rank's own work
    # is not done until the last superstep completes -- its finish time.
    res_bsp = run_mpi(
        make_bsp_degree_counting(stream, batch_size=batch, compute_skew=skew),
        sweep.machine(nodes),
        seed=seed,
    )
    table.add(
        impl="bsp_alltoallv",
        makespan=res_bsp.elapsed,
        avg_work_done_others=float(np.mean(res_bsp.finish_times[1:])),
    )

    def make_ygm_app(work_done):
        # The degree-count loop is inlined (rather than reusing
        # make_degree_counting) so the straggler's per-batch delay can be
        # interposed and the own-work completion time recorded.
        def ygm_app(ctx):
            from repro.graph.partition import CyclicPartition
            from repro.apps.degree_count import DEGREE_SPEC

            part = CyclicPartition(stream.num_vertices, ctx.nranks)
            degrees = np.zeros(part.local_count(ctx.rank), dtype=np.int64)

            def on_batch(b):
                ids = part.local_id_vec(b["vertex"].astype(np.int64))
                degrees[:] += np.bincount(ids, minlength=len(degrees))

            mb = ctx.mailbox(recv_batch=on_batch, capacity=capacity)
            for u, v in stream.batches(ctx.rank, batch):
                yield ctx.compute(len(u) * ctx.machine.config.compute.per_edge_gen)
                yield ctx.compute(skew(ctx.rank, 0))
                verts = np.concatenate((u, v))
                yield from mb.send_batch(
                    part.owner_vec(verts),
                    DEGREE_SPEC.build(vertex=verts.astype("u8")),
                    spec=DEGREE_SPEC,
                )
            yield from mb.flush()
            work_done[ctx.rank] = ctx.sim.now  # own work complete here
            yield from mb.wait_empty()
            return degrees

        return ygm_app

    for scheme in ("node_remote", "nlnr"):
        work_done = np.zeros(nodes * cores)
        res = run_ygm(
            make_ygm_app(work_done), sweep.machine(nodes), scheme, capacity, seed=seed
        )
        table.add(
            impl=f"ygm/{scheme}",
            makespan=res.elapsed,
            avg_work_done_others=float(np.mean(work_done[1:])),
        )
    table.note(
        "avg_work_done_others: mean time non-straggler ranks finished their "
        "own sends; BSP couples it to the straggler, YGM does not"
    )
    return table
