"""Command-line figure harness: ``python -m repro.bench fig6``.

Regenerates any of the paper's figures (as text tables) or the ablation
studies.  Figures can be given positionally (``fig6``, ``6a``) or via
``--fig``; ``--full`` uses the larger sweep (more nodes, 8 cores/node);
the default quick sweep finishes each figure in seconds to a couple of
minutes.

``--trace out.json`` / ``--metrics out.csv`` switch to the traced
single-run mode (see :mod:`repro.bench.tracing`): one representative
configuration of the first requested figure runs with the observability
layer enabled, emitting a Chrome ``trace_event`` timeline (one lane per
rank plus NIC lanes; load in chrome://tracing or Perfetto) and a
per-interval metrics table.

``--profile`` switches to the causal-profile mode (see
:mod:`repro.bench.profiling`): one representative configuration of the
first requested figure runs under *every* routing scheme with the
lineage profiler enabled, and a self-contained HTML report (plus a JSON
document; ``--profile-out`` sets the path) compares the schemes'
critical paths to quiescence, per-rank utilization and per-hop latency.

``--check`` switches to the correctness-harness mode (see
:mod:`repro.check` and TESTING.md): the routing-differential oracle and
a schedule-fuzz campaign run instead of any figure; the exit code
reflects whether every check passed.

``--pdes-workers N`` runs each YGM simulation partitioned across ``N``
worker processes through the parallel DES engine (:mod:`repro.pdes`;
results are bit-identical to serial, so figure tables do not change).
Under ``--check`` it additionally turns every oracle cell into a
serial-vs-parallel differential test.  ``--pdes-transport {shm,pipe}``
selects the export transport (shared-memory rings by default; the
pickle-over-pipe path is kept for differential testing).

``pdes --attribute`` (the bare positional ``pdes`` implies
``--attribute``) switches to the flight-recorded attribution mode (see
:mod:`repro.bench.attribution`): one representative configuration of
the first requested figure (default ``6a``) runs partitioned across
``--pdes-workers`` processes (default 4) with the PDES flight recorder
on, and the overhead-attribution report (JSON + self-contained HTML;
``--attribute-out`` sets the path) tiles every process's wall clock
into named phase buckets.  Adding ``--trace out.json`` also writes the
merged Chrome trace with one host wall-clock process group per worker.

``--perf`` switches to the wall-clock performance harness (see
:mod:`repro.bench.perf` and EXPERIMENTS.md): micro- and macrobenchmarks
of the DES stack itself, written to a schema-versioned
``BENCH_perf.json`` for cross-PR trajectory tracking.  ``--smoke``
shrinks it to one repeat at tiny scale (the CI ``perf-smoke`` job).

Multi-simulation modes (figures, ablations, ``--check``, ``--perf``)
fan their independent simulations out over a process pool
(:mod:`repro.exec`): ``--jobs N`` sets the worker count (default: all
visible CPUs; ``--jobs 1`` is the serial path and produces
byte-identical tables).  Completed cells land in an on-disk
content-addressed cache (``.repro-cache/``; keyed by config *and* a
hash of the ``repro`` sources, so code edits invalidate it
automatically), making re-runs of unchanged sweeps near-instant.
``--no-cache`` disables it, ``--clear-cache`` empties it first.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..exec import Pool
from .harness import SweepConfig

FIGS = ["5", "6a", "6b", "7a", "7b", "8a", "8c", "8d"]
ABLATIONS = ["capacity", "combining", "cores", "eager", "hybrid", "straggler"]


def run_figure(
    fig: str,
    sweep: SweepConfig,
    quick: bool,
    pool: Optional[Pool] = None,
    pdes_workers: int = 0,
):
    from . import ablations, fig5, fig6, fig7, fig8

    pw = pdes_workers
    if fig == "5":
        return [fig5.run(quick=quick, pool=pool)]
    if fig == "6a":
        return [fig6.run_weak(sweep, pool=pool, pdes_workers=pw)]
    if fig == "6b":
        return [fig6.run_strong(sweep, pool=pool, pdes_workers=pw)]
    if fig == "7a":
        return [fig7.run_weak(sweep, pool=pool, pdes_workers=pw)]
    if fig == "7b":
        return [fig7.run_strong(sweep, pool=pool, pdes_workers=pw)]
    if fig == "8a" or fig == "8b":
        return [fig8.run_weak(sweep, skewed=True, pool=pool, pdes_workers=pw)]
    if fig == "8c":
        return [fig8.run_weak(sweep, skewed=False, pool=pool, pdes_workers=pw)]
    if fig == "8d":
        return [fig8.run_strong_webgraph(sweep, pool=pool, pdes_workers=pw)]
    if fig == "capacity":
        return [ablations.run_capacity_sweep(pool=pool)]
    if fig == "combining":
        return [ablations.run_combining_sweep(pool=pool)]
    if fig == "cores":
        return [ablations.run_cores_sweep(pool=pool)]
    if fig == "eager":
        return [ablations.run_eager_threshold_sweep(pool=pool)]
    if fig == "hybrid":
        return [ablations.run_hybrid_comparison(pool=pool)]
    if fig == "straggler":
        return [ablations.run_straggler_comparison(pool=pool)]
    raise ValueError(f"unknown figure {fig!r}")


def expand_figs(figs: List[str]) -> List[str]:
    """Normalize figure ids: strip a ``fig`` prefix, expand groups.

    ``fig6`` / ``6`` expand to every figure panel starting with ``6``;
    ``all`` / ``ablations`` expand to their full lists.
    """
    known = FIGS + ["8b"] + ABLATIONS
    expanded: List[str] = []
    for raw in figs:
        f = raw.lower()
        if f.startswith("fig"):
            f = f[3:]
        if f == "all":
            expanded.extend(FIGS)
        elif f == "ablations":
            expanded.extend(ABLATIONS)
        elif f in known:
            expanded.append(f)
        else:
            panels = [k for k in FIGS if k.startswith(f)]
            if not panels:
                raise ValueError(
                    f"unknown figure {raw!r}; known: {known + ['all', 'ablations']}"
                )
            expanded.extend(panels)
    return expanded


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures on the simulated machine.",
    )
    parser.add_argument(
        "figs_pos",
        nargs="*",
        metavar="FIG",
        help="figure ids, e.g. fig6, 6a, capacity ('all', 'ablations' expand)",
    )
    parser.add_argument(
        "--fig",
        action="append",
        dest="figs",
        choices=FIGS + ["8b"] + ABLATIONS + ["all", "ablations"],
        help="figure id (repeatable); 'all' runs every paper figure, "
        "'ablations' every ablation",
    )
    parser.add_argument(
        "--full", action="store_true", help="larger sweep (slower, cleaner asymptotics)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for multi-simulation modes (default: all "
        "visible CPUs; 1 = serial, same output byte for byte)",
    )
    parser.add_argument(
        "--pdes-workers",
        type=int,
        default=0,
        metavar="N",
        help="run each YGM simulation partitioned across N processes "
        "(the parallel DES engine, repro.pdes; bit-identical results, "
        "clamped to the simulated node count).  Applies to figure cells "
        "(fig5 and the MPI comparator stay serial) and to the --check "
        "oracle, where every cell gains a serial-vs-parallel differential",
    )
    parser.add_argument(
        "--pdes-transport",
        choices=("shm", "pipe"),
        default=None,
        help="export transport for --pdes-workers runs: shm (shared-memory "
        "SPSC rings, the default) or pipe (pickle over os.pipe; slower, "
        "kept for differential testing).  Sets PDES_TRANSPORT for this "
        "process and every forked worker",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="empty the result cache before running anything",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result-cache directory (default: ./.repro-cache or "
        "$REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock limit; a job exceeding it is killed and "
        "retried once, then reported as failed (default: no limit)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="traced mode: write a Chrome trace_event JSON timeline of one "
        "representative configuration of the first requested figure",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="traced mode: write the per-interval metrics table (CSV)",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        help="metrics bucket width in simulated seconds (default: run/50)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="causal-profile mode: run one representative configuration of "
        "the first requested figure under every routing scheme with the "
        "lineage profiler, and write a self-contained HTML report (plus "
        "JSON) with the critical path to quiescence, per-rank utilization "
        "and per-hop latency histograms",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="with --profile: HTML output path (default: profile_<fig>.html; "
        "the JSON document lands next to it with a .json suffix)",
    )
    parser.add_argument(
        "--attribute",
        action="store_true",
        help="flight-recorded PDES attribution mode: run one partitioned "
        "configuration of the first requested figure (default 6a) with "
        "the cross-process flight recorder and write the overhead-"
        "attribution report (HTML + JSON); the positional figure id "
        "'pdes' implies this flag.  --pdes-workers sets the partition "
        "count (default 4 here), --trace adds the merged Chrome trace",
    )
    parser.add_argument(
        "--attribute-out",
        metavar="PATH",
        default=None,
        help="with --attribute: HTML output path (default: "
        "pdes_attr_<fig>.html; the JSON document lands next to it with "
        "a .json suffix)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="correctness-harness mode: run the routing-differential "
        "oracle and a schedule-fuzz campaign instead of figures",
    )
    parser.add_argument(
        "--fuzz-runs",
        type=int,
        default=50,
        help="perturbed interleavings in the --check fuzz campaign",
    )
    parser.add_argument(
        "--check-app",
        action="append",
        dest="check_apps",
        metavar="APP",
        help="restrict the --check oracle to an app (repeatable)",
    )
    parser.add_argument(
        "--check-scale",
        action="append",
        dest="check_scales",
        metavar="SCALE",
        help="restrict the --check oracle to a machine scale (repeatable)",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="performance-harness mode: wall-clock micro/macro benchmarks "
        "of the DES stack, written to BENCH_perf.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="with --perf: 1 repeat at tiny scale (harness sanity, not timing)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="with --perf: repeats per benchmark (default 5)",
    )
    parser.add_argument(
        "--perf-out",
        metavar="PATH",
        default="BENCH_perf.json",
        help="with --perf: output JSON path (default: ./BENCH_perf.json)",
    )
    parser.add_argument(
        "--perf-baseline",
        metavar="PATH",
        help="with --perf: previous BENCH_perf.json to embed medians "
        "and speedups against",
    )
    parser.add_argument(
        "--perf-only",
        action="append",
        dest="perf_only",
        metavar="NAME",
        help="with --perf: run only this benchmark (repeatable)",
    )
    parser.add_argument(
        "--perf-gate",
        metavar="REPORT",
        nargs="?",
        const="BENCH_perf.json",
        help="regression-gate a perf report (default: ./BENCH_perf.json): "
        "fail if the columnar mailbox bench loses its floor over the "
        "scalar bench, or drops >20%% below a comparable --perf-baseline",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.pdes_workers < 0:
        parser.error("--pdes-workers must be >= 0")
    if args.pdes_transport is not None:
        # Environment rather than plumbing: forked pdes workers and pool
        # subprocesses both inherit it.
        os.environ["PDES_TRANSPORT"] = args.pdes_transport

    from ..exec import make_pool, stderr_progress

    if args.clear_cache:
        from ..exec import ResultCache

        removed = ResultCache(args.cache_dir).clear()
        print(f"# cleared {removed} cache entr{'y' if removed == 1 else 'ies'}",
              file=sys.stderr)

    pool = make_pool(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        default_timeout=args.job_timeout,
        progress=stderr_progress,
    )

    if args.perf_gate and not args.perf:
        from .perf import run_gate

        try:
            return run_gate(args.perf_gate, baseline_path=args.perf_baseline)
        except ValueError as exc:
            parser.error(str(exc))

    if args.perf:
        from .perf import DEFAULT_REPEATS, run_gate, run_perf

        try:
            rc = run_perf(
                out_path=args.perf_out,
                repeats=args.repeats or DEFAULT_REPEATS,
                smoke=args.smoke,
                baseline_path=args.perf_baseline,
                only=args.perf_only,
                # Timing cells must not be cached: a stale wall-clock
                # measurement is worse than no measurement.
                pool=Pool(
                    jobs=pool.jobs, cache=None, progress=stderr_progress
                ),
            )
            if rc == 0 and args.perf_gate:
                # --perf --perf-gate: gate the report just written.
                rc = run_gate(args.perf_out, baseline_path=args.perf_baseline)
            return rc
        except (ValueError, OSError) as exc:
            parser.error(str(exc))
        except KeyboardInterrupt:
            print("\n# interrupted; workers terminated", file=sys.stderr)
            return 130

    if args.check:
        from ..check import ORACLE_APPS, ORACLE_SCALES
        from .checking import run_check

        for app in args.check_apps or ():
            if app not in ORACLE_APPS:
                parser.error(
                    f"unknown --check-app {app!r}; known: {sorted(ORACLE_APPS)}"
                )
        for scale in args.check_scales or ():
            if scale not in ORACLE_SCALES:
                parser.error(
                    f"unknown --check-scale {scale!r}; "
                    f"known: {sorted(ORACLE_SCALES)}"
                )
        try:
            return run_check(
                seed=args.seed,
                fuzz_runs=args.fuzz_runs,
                apps=args.check_apps,
                scales=args.check_scales,
                pool=pool,
                pdes_workers=args.pdes_workers,
            )
        except KeyboardInterrupt:
            print("\n# interrupted; workers terminated", file=sys.stderr)
            return 130

    figs = (args.figs or []) + args.figs_pos
    attribute = args.attribute
    if any(f.lower() == "pdes" for f in figs):
        # The bare positional "pdes" selects the attribution mode.
        attribute = True
        figs = [f for f in figs if f.lower() != "pdes"]
    if not figs:
        figs = ["6a"] if attribute else ["all"]
    try:
        expanded = expand_figs(figs)
    except ValueError as exc:
        parser.error(str(exc))

    sweep = SweepConfig.full() if args.full else SweepConfig.quick()
    if args.seed != sweep.seed:
        sweep = SweepConfig(
            cores_per_node=sweep.cores_per_node,
            node_counts=sweep.node_counts,
            mailbox_capacity=sweep.mailbox_capacity,
            seed=args.seed,
        )

    if attribute:
        from .attribution import run_attribution

        html_path = args.attribute_out or f"pdes_attr_{expanded[0]}.html"
        json_path = (
            html_path[: -len(".html")] + ".json"
            if html_path.endswith(".html")
            else html_path + ".json"
        )
        for path in (html_path, json_path, args.trace):
            if path:
                try:
                    with open(path, "a"):
                        pass
                except OSError as exc:
                    parser.error(f"cannot write {path}: {exc}")
        start = time.perf_counter()
        try:
            table = run_attribution(
                expanded[0],
                sweep,
                html_path,
                json_path,
                trace_path=args.trace,
                workers=args.pdes_workers or 4,
                transport=args.pdes_transport,
            )
        except (ValueError, OSError) as exc:
            parser.error(str(exc))
        wall = time.perf_counter() - start
        print(table.render())
        print(f"# harness wall-clock: {wall:.1f}s")
        return 0

    if args.profile:
        from .profiling import run_profiled

        html_path = args.profile_out or f"profile_{expanded[0]}.html"
        json_path = (
            html_path[: -len(".html")] + ".json"
            if html_path.endswith(".html")
            else html_path + ".json"
        )
        for path in (html_path, json_path):
            try:
                with open(path, "a"):
                    pass
            except OSError as exc:
                parser.error(f"cannot write {path}: {exc}")
        start = time.perf_counter()
        try:
            table = run_profiled(expanded[0], sweep, html_path, json_path)
        except (ValueError, OSError) as exc:
            parser.error(str(exc))
        wall = time.perf_counter() - start
        print(table.render())
        print(f"# harness wall-clock: {wall:.1f}s")
        return 0

    if args.trace or args.metrics:
        from .tracing import run_traced

        # Fail fast on unwritable output paths -- before the simulation.
        for path in (args.trace, args.metrics):
            if path:
                try:
                    with open(path, "a"):
                        pass
                except OSError as exc:
                    parser.error(f"cannot write {path}: {exc}")
        start = time.perf_counter()
        try:
            table = run_traced(
                expanded[0],
                sweep,
                trace_path=args.trace,
                metrics_path=args.metrics,
                metrics_interval=args.metrics_interval,
            )
        except (ValueError, OSError) as exc:
            parser.error(str(exc))
        wall = time.perf_counter() - start
        print(table.render())
        print(f"# harness wall-clock: {wall:.1f}s")
        return 0

    # Every figure runs even if an earlier one fails; failures are
    # reported together at the end and the exit code reflects them.
    failed: List[str] = []
    for fig in expanded:
        start = time.perf_counter()
        try:
            tables = run_figure(
                fig,
                sweep,
                quick=not args.full,
                pool=pool,
                pdes_workers=args.pdes_workers,
            )
        except KeyboardInterrupt:
            print("\n# interrupted; workers terminated", file=sys.stderr)
            return 130
        except Exception as exc:
            failed.append(fig)
            print(f"# figure {fig} FAILED: {exc}", file=sys.stderr)
            continue
        wall = time.perf_counter() - start
        for table in tables:
            print(table.render())
            print(f"# harness wall-clock: {wall:.1f}s")
            print()
    if failed:
        print(
            f"# {len(failed)} figure(s) failed: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
