"""Command-line figure harness: ``python -m repro.bench --fig 6a``.

Regenerates any of the paper's figures (as text tables) or the ablation
studies.  ``--full`` uses the larger sweep (more nodes, 8 cores/node);
the default quick sweep finishes each figure in seconds to a couple of
minutes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from .harness import SweepConfig

FIGS = ["5", "6a", "6b", "7a", "7b", "8a", "8c", "8d"]
ABLATIONS = ["capacity", "cores", "eager", "hybrid", "straggler"]


def run_figure(fig: str, sweep: SweepConfig, quick: bool):
    from . import ablations, fig5, fig6, fig7, fig8

    if fig == "5":
        return [fig5.run(quick=quick)]
    if fig == "6a":
        return [fig6.run_weak(sweep)]
    if fig == "6b":
        return [fig6.run_strong(sweep)]
    if fig == "7a":
        return [fig7.run_weak(sweep)]
    if fig == "7b":
        return [fig7.run_strong(sweep)]
    if fig == "8a" or fig == "8b":
        return [fig8.run_weak(sweep, skewed=True)]
    if fig == "8c":
        return [fig8.run_weak(sweep, skewed=False)]
    if fig == "8d":
        return [fig8.run_strong_webgraph(sweep)]
    if fig == "capacity":
        return [ablations.run_capacity_sweep()]
    if fig == "cores":
        return [ablations.run_cores_sweep()]
    if fig == "eager":
        return [ablations.run_eager_threshold_sweep()]
    if fig == "hybrid":
        return [ablations.run_hybrid_comparison()]
    if fig == "straggler":
        return [ablations.run_straggler_comparison()]
    raise ValueError(f"unknown figure {fig!r}")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures on the simulated machine.",
    )
    parser.add_argument(
        "--fig",
        action="append",
        dest="figs",
        choices=FIGS + ["8b"] + ABLATIONS + ["all", "ablations"],
        help="figure id (repeatable); 'all' runs every paper figure, "
        "'ablations' every ablation",
    )
    parser.add_argument(
        "--full", action="store_true", help="larger sweep (slower, cleaner asymptotics)"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    figs = args.figs or ["all"]
    expanded: List[str] = []
    for f in figs:
        if f == "all":
            expanded.extend(FIGS)
        elif f == "ablations":
            expanded.extend(ABLATIONS)
        else:
            expanded.append(f)

    sweep = SweepConfig.full() if args.full else SweepConfig.quick()
    if args.seed != sweep.seed:
        sweep = SweepConfig(
            cores_per_node=sweep.cores_per_node,
            node_counts=sweep.node_counts,
            mailbox_capacity=sweep.mailbox_capacity,
            seed=args.seed,
        )

    for fig in expanded:
        start = time.perf_counter()
        tables = run_figure(fig, sweep, quick=not args.full)
        wall = time.perf_counter() - start
        for table in tables:
            print(table.render())
            print(f"# harness wall-clock: {wall:.1f}s")
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
