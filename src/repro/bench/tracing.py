"""Traced single-run mode behind the CLI's ``--trace`` / ``--metrics``.

Figure sweeps run dozens of configurations; a trace of all of them would
be unreadable (and the Chrome viewer expects one timeline).  So the
traced mode picks one *representative* configuration of the requested
figure -- the smallest preset with remote traffic (2 nodes unless the
sweep says otherwise) under the most capable routing scheme available at
that size -- runs it once with a :class:`repro.trace.Tracer` installed,
and exports the Chrome timeline and/or the per-interval metrics table.

Tracing is provably non-perturbing (see ``tests/trace``), so the summary
row printed by a traced run is identical to what an untraced run of the
same configuration would report.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..trace import Tracer
from .harness import SweepConfig, run_ygm, schemes_for
from .report import Table

#: Figures the traced mode knows how to build a workload for.
TRACEABLE = ("6a", "6b", "7a", "7b")


def _workload(fig: str, sweep: SweepConfig, nodes: int) -> Callable:
    """Build the figure's rank program at the given node count."""
    nranks = nodes * sweep.cores_per_node
    if fig in ("6a", "6b"):
        from ..apps import make_degree_counting
        from ..graph import er_stream

        if fig == "6a":  # weak scaling: fixed per-rank work
            stream = er_stream(
                num_vertices=2**10 * nranks, edges_per_rank=2**12, seed=sweep.seed
            )
        else:  # strong scaling: fixed total work
            stream = er_stream(
                num_vertices=2**14,
                edges_per_rank=max(1, 2**17 // nranks),
                seed=sweep.seed,
            )
        return make_degree_counting(stream, batch_size=2**12)
    if fig in ("7a", "7b"):
        from ..apps import make_connected_components
        from ..graph import rmat_stream

        scale = 9 + max(0, int(math.log2(nodes)))
        edges_per_rank = max(1, (1 << 12) * nodes // nranks)
        stream = rmat_stream(scale, edges_per_rank, seed=sweep.seed)
        return make_connected_components(stream, batch_size=2**12)
    raise ValueError(
        f"figure {fig!r} has no traced mode; traceable figures: {TRACEABLE}"
    )


def run_traced(
    fig: str,
    sweep: SweepConfig,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    metrics_interval: Optional[float] = None,
) -> Table:
    """Run the representative configuration of ``fig`` under a tracer."""
    # Smallest node count with remote (inter-node) traffic, so the NIC
    # lanes are populated; fall back to whatever the sweep offers.
    candidates = [n for n in sweep.node_counts if n >= 2]
    nodes = min(candidates) if candidates else max(sweep.node_counts)
    schemes = schemes_for(nodes, sweep.cores_per_node)
    scheme = "nlnr" if "nlnr" in schemes else schemes[-1]

    tracer = Tracer()
    res = run_ygm(
        _workload(fig, sweep, nodes),
        sweep.machine(nodes),
        scheme,
        sweep.mailbox_capacity,
        seed=sweep.seed,
        tracer=tracer,
    )
    tracer.close()
    if trace_path:
        tracer.export_chrome(trace_path)
    metrics_rows = 0
    if metrics_path:
        metrics_rows = len(
            tracer.export_metrics(metrics_path, interval=metrics_interval)
        )

    stats = res.mailbox_stats
    table = Table(
        title=f"Traced run: fig {fig}, {nodes} nodes x "
        f"{sweep.cores_per_node} cores, scheme {scheme}",
        columns=[
            "seconds", "trace_events", "remote_packets", "remote_bytes",
            "local_packets", "flushes", "term_rounds", "idle_seconds",
        ],
    )
    table.add(
        seconds=res.elapsed,
        trace_events=len(tracer.events),
        remote_packets=stats.remote_packets_sent,
        remote_bytes=stats.remote_bytes_sent,
        local_packets=stats.local_packets_sent,
        flushes=stats.flushes,
        term_rounds=stats.term_rounds,
        idle_seconds=stats.idle_time,
    )
    if trace_path:
        table.note(f"Chrome trace_event JSON written to {trace_path}")
    if metrics_path:
        table.note(f"{metrics_rows} metric intervals written to {metrics_path}")
    return table
