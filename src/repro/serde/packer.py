"""A compact binary serializer for variable-length messages.

This is the reproduction's substitute for *cereal*, the C++ serialization
library YGM uses (paper Section IV-C).  Like cereal it provides:

* support for the common container types out of the box (here: ``None``,
  ``bool``, ``int``, ``float``, ``bytes``, ``str``, ``list``, ``tuple``,
  ``dict``, ``set`` and NumPy arrays), so users rarely write their own
  packing code,
* an extension point for user types (:mod:`repro.serde.registry`),
* deterministic, byte-accurate encoded sizes -- which is what the network
  model consumes to time packets.

The format is a type-tag byte followed by a payload.  Integers use
zigzag varint encoding; containers are length-prefixed.  ``pickle`` is
deliberately not used: its output size is noisy (memoisation, protocol
framing) and the whole point here is faithful message-size accounting.

Packing dispatches on exact type through a handler table rather than an
``elif`` chain, and unpacking through a 256-entry tag table; both produce
the same bytes as the original chain for every input (pinned by the
reference-encoding property tests).  :func:`pack_many`/:func:`unpack_many`
batch a whole message stream through one reused buffer.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, Iterable, List, Tuple

import numpy as np

from .registry import lookup_by_id, lookup_by_type

# --------------------------------------------------------------------- tags
T_NONE = 0x00
T_FALSE = 0x01
T_TRUE = 0x02
T_INT = 0x03
T_FLOAT = 0x04
T_BYTES = 0x05
T_STR = 0x06
T_LIST = 0x07
T_TUPLE = 0x08
T_DICT = 0x09
T_SET = 0x0A
T_NDARRAY = 0x0B
T_CUSTOM = 0x0C
T_NPSCALAR = 0x0D

_F64 = struct.Struct("<d")
_F64_PACK = _F64.pack
_F64_UNPACK_FROM = _F64.unpack_from


class SerdeError(ValueError):
    """Raised on unserialisable input or corrupt encoded data."""


# ------------------------------------------------------------------ varints
def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        b = value & 0x7F
        value >>= 7
        if value:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_uvarint(buf: memoryview, pos: int) -> Tuple[int, int]:
    shift = 0
    value = 0
    while True:
        if pos >= len(buf):
            raise SerdeError("truncated varint")
        b = buf[pos]
        pos += 1
        value |= (b & 0x7F) << shift
        if not (b & 0x80):
            return value, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if -(2**63) <= value < 2**63 else _big_zigzag(value)


def _big_zigzag(value: int) -> int:
    # Arbitrary-precision zigzag for ints outside int64.
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# ------------------------------------------------------------------ packing
#
# One handler per exact built-in type, dispatched through a dict keyed on
# ``type(obj)``.  Anything not in the table (NumPy values, registered user
# types, unknown types) falls through to :func:`_pack_other`, which keeps
# the original chain's check order.

def _pack_none(out: bytearray, obj: Any) -> None:
    out.append(T_NONE)


def _pack_bool(out: bytearray, obj: Any) -> None:
    out.append(T_TRUE if obj else T_FALSE)


def _pack_int(out: bytearray, obj: Any) -> None:
    out.append(T_INT)
    zz = obj * 2 if obj >= 0 else -obj * 2 - 1
    if zz < 0x80:
        out.append(zz)
    else:
        _write_uvarint(out, zz)


def _pack_float(out: bytearray, obj: Any) -> None:
    out.append(T_FLOAT)
    out += _F64_PACK(obj)


def _pack_bytes(out: bytearray, obj: Any) -> None:
    out.append(T_BYTES)
    n = len(obj)
    if n < 0x80:
        out.append(n)
    else:
        _write_uvarint(out, n)
    out += obj


def _pack_str(out: bytearray, obj: Any) -> None:
    raw = obj.encode("utf-8")
    out.append(T_STR)
    n = len(raw)
    if n < 0x80:
        out.append(n)
    else:
        _write_uvarint(out, n)
    out += raw


def _pack_list(out: bytearray, obj: Any) -> None:
    out.append(T_LIST)
    n = len(obj)
    if n < 0x80:
        out.append(n)
    else:
        _write_uvarint(out, n)
    handlers = _PACK_HANDLERS
    other = _pack_other
    for item in obj:
        handlers.get(type(item), other)(out, item)


def _pack_tuple(out: bytearray, obj: Any) -> None:
    out.append(T_TUPLE)
    n = len(obj)
    if n < 0x80:
        out.append(n)
    else:
        _write_uvarint(out, n)
    handlers = _PACK_HANDLERS
    other = _pack_other
    for item in obj:
        handlers.get(type(item), other)(out, item)


def _pack_dict(out: bytearray, obj: Any) -> None:
    out.append(T_DICT)
    n = len(obj)
    if n < 0x80:
        out.append(n)
    else:
        _write_uvarint(out, n)
    handlers = _PACK_HANDLERS
    other = _pack_other
    for key, val in obj.items():
        handlers.get(type(key), other)(out, key)
        handlers.get(type(val), other)(out, val)


def _pack_set(out: bytearray, obj: Any) -> None:
    out.append(T_SET)
    _write_uvarint(out, len(obj))
    # Sort by encoding for deterministic output.
    encoded = sorted(pack(item) for item in obj)
    for enc in encoded:
        out += enc


def _pack_other(out: bytearray, obj: Any) -> None:
    """Fallback for types outside the dispatch table (original chain tail)."""
    if isinstance(obj, np.ndarray):
        _pack_ndarray(out, obj)
    elif isinstance(obj, np.generic):
        out.append(T_NPSCALAR)
        descr = obj.dtype.str.encode("ascii")
        _write_uvarint(out, len(descr))
        out += descr
        out += obj.tobytes()
    else:
        entry = lookup_by_type(type(obj))
        if entry is None:
            raise SerdeError(
                f"cannot serialize {type(obj).__name__}; register it with "
                "repro.serde.register()"
            )
        out.append(T_CUSTOM)
        _write_uvarint(out, entry.type_id)
        _pack_into(out, entry.to_state(obj))


_PACK_HANDLERS: Dict[type, Callable[[bytearray, Any], None]] = {
    type(None): _pack_none,
    bool: _pack_bool,
    int: _pack_int,
    float: _pack_float,
    bytes: _pack_bytes,
    str: _pack_str,
    list: _pack_list,
    tuple: _pack_tuple,
    dict: _pack_dict,
    set: _pack_set,
    frozenset: _pack_set,
}

# Registered after its definition below; exact-type dispatch spares the
# PDES wire hot path an isinstance chain per column.
# (np.ndarray subclasses still reach _pack_ndarray via _pack_other.)


def _pack_into(out: bytearray, obj: Any) -> None:
    _PACK_HANDLERS.get(type(obj), _pack_other)(out, obj)


# Hot-path caches: a run ships the same handful of dtypes millions of
# times, and both ``np.dtype(str)`` construction and ``dtype.str`` are
# surprisingly expensive NumPy calls.  dtype objects are immutable and
# the set seen per process is tiny, so unbounded dicts are safe.
_DTYPE_PACK_CACHE: Dict[np.dtype, bytes] = {}
_DTYPE_UNPACK_CACHE: Dict[bytes, np.dtype] = {}


def _pack_dtype(out: bytearray, dtype: np.dtype) -> None:
    """Encode a dtype: flag 0 + string form, or flag 1 + structured descr."""
    if dtype.names:
        out.append(1)
        # descr is a nested list/tuple/str structure; reuse the packer.
        _pack_into(out, _descr_to_plain(dtype.descr))
    else:
        enc = _DTYPE_PACK_CACHE.get(dtype)
        if enc is None:
            descr = dtype.str.encode("ascii")
            hdr = bytearray((0,))
            _write_uvarint(hdr, len(descr))
            enc = _DTYPE_PACK_CACHE[dtype] = bytes(hdr) + descr
        out += enc


def _descr_to_plain(descr):
    """Normalise np.dtype.descr into pure lists/tuples/str/int."""
    plain = []
    for entry in descr:
        plain.append(tuple(_descr_to_plain(e) if isinstance(e, list) else e for e in entry))
    return plain


def _unpack_dtype(buf: memoryview, pos: int) -> Tuple[np.dtype, int]:
    flag = buf[pos]
    pos += 1
    if flag == 1:
        descr, pos = _unpack_from(buf, pos)
        return np.dtype([tuple(e) for e in descr]), pos
    n, pos = _read_uvarint(buf, pos)
    key = bytes(buf[pos : pos + n])
    dtype = _DTYPE_UNPACK_CACHE.get(key)
    if dtype is None:
        dtype = _DTYPE_UNPACK_CACHE[key] = np.dtype(key.decode("ascii"))
    return dtype, pos + n


def _pack_ndarray(out: bytearray, arr: np.ndarray) -> None:
    if arr.dtype.hasobject:
        raise SerdeError("object-dtype arrays are not serialisable")
    out.append(T_NDARRAY)
    _pack_dtype(out, arr.dtype)
    _write_uvarint(out, arr.ndim)
    for dim in arr.shape:
        _write_uvarint(out, dim)
    if arr.flags.c_contiguous:
        # Append straight from the array's buffer: one copy instead of the
        # two that tobytes() + append would make.  Same bytes either way.
        try:
            out += arr.data
            return
        except (BufferError, ValueError, TypeError):
            pass  # dtype can't export a buffer (e.g. datetime64)
    out += np.ascontiguousarray(arr).tobytes()


_PACK_HANDLERS[np.ndarray] = _pack_ndarray


def pack(obj: Any) -> bytes:
    """Serialize ``obj`` to bytes."""
    out = bytearray()
    _PACK_HANDLERS.get(type(obj), _pack_other)(out, obj)
    return bytes(out)


def pack_into(out: bytearray, obj: Any) -> None:
    """Append the encoding of ``obj`` to ``out`` (caller-owned buffer)."""
    _PACK_HANDLERS.get(type(obj), _pack_other)(out, obj)


def pack_many(objs: Iterable[Any], out: "bytearray | None" = None) -> bytes:
    """Serialize a stream of objects into one concatenated blob.

    Byte-identical to ``b"".join(pack(o) for o in objs)`` but builds the
    whole stream in a single buffer (``out`` if supplied, so callers can
    recycle one bytearray across batches).
    """
    buf = bytearray() if out is None else out
    handlers = _PACK_HANDLERS
    other = _pack_other
    for obj in objs:
        handlers.get(type(obj), other)(buf, obj)
    return bytes(buf)


_SIZE_SCRATCH = bytearray()


def packed_size(obj: Any) -> int:
    """The encoded size of ``obj`` in bytes (== ``len(pack(obj))``)."""
    scratch = _SIZE_SCRATCH
    scratch.clear()
    _PACK_HANDLERS.get(type(obj), _pack_other)(scratch, obj)
    return len(scratch)


def int64_packed_sizes(objs, n: int) -> "np.ndarray | None":
    """Encoded sizes of ``n`` plain ``int`` objects, or ``None``.

    The caller guarantees every element is a plain ``int`` (``type`` is
    exactly ``int``, not bool or a NumPy scalar); returns ``None`` when a
    value exceeds int64, in which case the per-element packer must run.
    """
    try:
        v = np.fromiter(objs, dtype=np.int64, count=n)
    except OverflowError:
        return None  # some value exceeds int64; the loop handles big ints
    # Zigzag with int64 wrap semantics: ``(v << 1) ^ (v >> 63)`` viewed
    # as uint64 matches Python's arbitrary-precision ``v*2`` / ``-v*2-1``
    # for the whole int64 range (including -2**63 -> 2**64 - 1).
    zz = ((v << 1) ^ (v >> 63)).view(np.uint64)
    # Tag byte + 1 payload byte, plus one byte per additional 7-bit
    # group of the zigzag value (uvarint length).
    sizes = np.full(n, 2, dtype=np.int64)
    for k in range(1, 10):
        sizes += zz >= np.uint64(1 << (7 * k))
    return sizes


def packed_size_many(objs) -> np.ndarray:
    """Vectorized :func:`packed_size` over a sequence (int64 array).

    Element-for-element equal to ``[packed_size(o) for o in objs]``.  The
    all-``int`` case -- the dominant payload shape of scalar mailbox
    traffic -- is computed with NumPy zigzag/varint arithmetic instead of
    running the packer per element; anything else (mixed types, ints
    beyond int64) falls back to the per-element packer.
    """
    n = len(objs)
    # Exact-type scan (in C, via ``set(map(type, ...))``) on purpose:
    # bool is an int subclass but packs as a tag byte, and NumPy scalars
    # pack through their own handler -- both must take the fallback loop.
    if n and set(map(type, objs)) == {int}:
        sizes = int64_packed_sizes(objs, n)
        if sizes is not None:
            return sizes
    return np.fromiter(
        (packed_size(o) for o in objs), dtype=np.int64, count=n
    )


# ---------------------------------------------------------------- unpacking
#
# One handler per tag, indexed by the tag byte; handlers receive the
# position *after* the tag.  A handler reading past the end raises
# IndexError, which the public entry points convert to SerdeError.

def _unpack_none(buf: memoryview, pos: int) -> Tuple[Any, int]:
    return None, pos


def _unpack_false(buf: memoryview, pos: int) -> Tuple[Any, int]:
    return False, pos


def _unpack_true(buf: memoryview, pos: int) -> Tuple[Any, int]:
    return True, pos


def _unpack_int(buf: memoryview, pos: int) -> Tuple[Any, int]:
    b = buf[pos]
    if b < 0x80:
        return (b >> 1) ^ -(b & 1), pos + 1
    zz, pos = _read_uvarint(buf, pos)
    return (zz >> 1) ^ -(zz & 1), pos


def _unpack_float(buf: memoryview, pos: int) -> Tuple[Any, int]:
    return _F64_UNPACK_FROM(buf, pos)[0], pos + 8


def _unpack_bytes(buf: memoryview, pos: int) -> Tuple[Any, int]:
    n, pos = _read_uvarint(buf, pos)
    return bytes(buf[pos : pos + n]), pos + n


def _unpack_str(buf: memoryview, pos: int) -> Tuple[Any, int]:
    n, pos = _read_uvarint(buf, pos)
    return bytes(buf[pos : pos + n]).decode("utf-8"), pos + n


def _unpack_list(buf: memoryview, pos: int) -> Tuple[Any, int]:
    n, pos = _read_uvarint(buf, pos)
    handlers = _UNPACK_HANDLERS
    items = []
    append = items.append
    for _ in range(n):
        item, pos = handlers[buf[pos]](buf, pos + 1)
        append(item)
    return items, pos


def _unpack_tuple(buf: memoryview, pos: int) -> Tuple[Any, int]:
    items, pos = _unpack_list(buf, pos)
    return tuple(items), pos


def _unpack_dict(buf: memoryview, pos: int) -> Tuple[Any, int]:
    n, pos = _read_uvarint(buf, pos)
    handlers = _UNPACK_HANDLERS
    d = {}
    for _ in range(n):
        key, pos = handlers[buf[pos]](buf, pos + 1)
        val, pos = handlers[buf[pos]](buf, pos + 1)
        d[key] = val
    return d, pos


def _unpack_set(buf: memoryview, pos: int) -> Tuple[Any, int]:
    n, pos = _read_uvarint(buf, pos)
    handlers = _UNPACK_HANDLERS
    items = set()
    add = items.add
    for _ in range(n):
        item, pos = handlers[buf[pos]](buf, pos + 1)
        add(item)
    return items, pos


def _unpack_npscalar(buf: memoryview, pos: int) -> Tuple[Any, int]:
    n, pos = _read_uvarint(buf, pos)
    dtype = np.dtype(bytes(buf[pos : pos + n]).decode("ascii"))
    pos += n
    value = np.frombuffer(buf[pos : pos + dtype.itemsize], dtype=dtype)[0]
    return value, pos + dtype.itemsize


def _unpack_custom(buf: memoryview, pos: int) -> Tuple[Any, int]:
    type_id, pos = _read_uvarint(buf, pos)
    entry = lookup_by_id(type_id)
    if entry is None:
        raise SerdeError(f"unknown custom type id {type_id}")
    state, pos = _unpack_from(buf, pos)
    return entry.from_state(state), pos


def _unpack_ndarray(buf: memoryview, pos: int) -> Tuple[np.ndarray, int]:
    dtype, pos = _unpack_dtype(buf, pos)
    ndim, pos = _read_uvarint(buf, pos)
    if ndim == 1:
        # Hot path: the 1-D columns the PDES wire codec ships by the
        # million.  No reshape, no np.prod -- frombuffer + copy only.
        count, pos = _read_uvarint(buf, pos)
        nbytes = count * dtype.itemsize
        arr = np.frombuffer(buf[pos : pos + nbytes], dtype=dtype).copy()
        return arr, pos + nbytes
    shape = []
    count = 1
    for _ in range(ndim):
        dim, pos = _read_uvarint(buf, pos)
        shape.append(dim)
        count *= dim
    nbytes = count * dtype.itemsize
    arr = np.frombuffer(buf[pos : pos + nbytes], dtype=dtype).reshape(shape).copy()
    return arr, pos + nbytes


def _unpack_badtag_factory(tag: int) -> Callable[[memoryview, int], Tuple[Any, int]]:
    def _unpack_badtag(buf: memoryview, pos: int) -> Tuple[Any, int]:
        raise SerdeError(f"unknown type tag 0x{tag:02x}")

    return _unpack_badtag


_UNPACK_HANDLERS: List[Callable[[memoryview, int], Tuple[Any, int]]] = [
    _unpack_badtag_factory(tag) for tag in range(256)
]
_UNPACK_HANDLERS[T_NONE] = _unpack_none
_UNPACK_HANDLERS[T_FALSE] = _unpack_false
_UNPACK_HANDLERS[T_TRUE] = _unpack_true
_UNPACK_HANDLERS[T_INT] = _unpack_int
_UNPACK_HANDLERS[T_FLOAT] = _unpack_float
_UNPACK_HANDLERS[T_BYTES] = _unpack_bytes
_UNPACK_HANDLERS[T_STR] = _unpack_str
_UNPACK_HANDLERS[T_LIST] = _unpack_list
_UNPACK_HANDLERS[T_TUPLE] = _unpack_tuple
_UNPACK_HANDLERS[T_DICT] = _unpack_dict
_UNPACK_HANDLERS[T_SET] = _unpack_set
_UNPACK_HANDLERS[T_NDARRAY] = _unpack_ndarray
_UNPACK_HANDLERS[T_NPSCALAR] = _unpack_npscalar
_UNPACK_HANDLERS[T_CUSTOM] = _unpack_custom


def _unpack_from(buf: memoryview, pos: int) -> Tuple[Any, int]:
    if pos >= len(buf):
        raise SerdeError("truncated data")
    return _UNPACK_HANDLERS[buf[pos]](buf, pos + 1)


def unpack_from(data, pos: int = 0) -> Tuple[Any, int]:
    """Deserialize one object from ``data`` at ``pos``; returns
    ``(obj, next_pos)``.

    The incremental entry point for stream decoders: the PDES ring
    transport (:mod:`repro.pdes.wire`) writes concatenated encodings
    with :func:`pack_into` and reads them back object by object straight
    out of shared memory, without slicing per-object blobs first.
    ``data`` may be any buffer (bytes, bytearray, memoryview).
    """
    buf = data if type(data) is memoryview else memoryview(data)
    if pos >= len(buf):
        raise SerdeError("truncated data")
    try:
        return _UNPACK_HANDLERS[buf[pos]](buf, pos + 1)
    except (IndexError, struct.error):
        raise SerdeError("truncated data") from None


def unpack(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`pack`."""
    buf = memoryview(data)
    if not buf:
        raise SerdeError("truncated data")
    try:
        obj, pos = _UNPACK_HANDLERS[buf[0]](buf, 1)
    except (IndexError, struct.error):
        raise SerdeError("truncated data") from None
    if pos != len(data):
        raise SerdeError(f"{len(data) - pos} trailing bytes after object")
    return obj


def unpack_many(data: bytes) -> List[Any]:
    """Deserialize a concatenated blob produced by :func:`pack_many`."""
    buf = memoryview(data)
    end = len(buf)
    handlers = _UNPACK_HANDLERS
    out: List[Any] = []
    append = out.append
    pos = 0
    try:
        while pos < end:
            obj, pos = handlers[buf[pos]](buf, pos + 1)
            append(obj)
    except (IndexError, struct.error):
        raise SerdeError("truncated data") from None
    if pos != end:
        raise SerdeError(f"object ran {pos - end} bytes past the blob")
    return out
