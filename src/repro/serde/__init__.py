"""Serialization for variable-length messages (the *cereal* substitute).

See paper Section IV-C: YGM supports variable-length messages via cereal;
this package provides the same capability (binary packing with container
support and a user-type registry) plus a NumPy structured-record fast path
for bulk numeric traffic.
"""

from .packer import (
    SerdeError,
    pack,
    pack_into,
    pack_many,
    packed_size,
    packed_size_many,
    unpack,
    unpack_from,
    unpack_many,
)
from .records import RecordSpec
from .registry import clear_registry, register, registered

__all__ = [
    "RecordSpec",
    "SerdeError",
    "clear_registry",
    "pack",
    "pack_into",
    "pack_many",
    "packed_size",
    "packed_size_many",
    "register",
    "registered",
    "unpack",
    "unpack_from",
    "unpack_many",
]
