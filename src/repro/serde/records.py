"""Fixed-width record messages: the vectorized fast path.

Mirrors the mpi4py convention taught in the HPC guides: generic Python
objects go through the (flexible, slower) :mod:`repro.serde.packer`, while
bulk numeric traffic uses NumPy structured arrays with a fixed
:class:`RecordSpec` -- zero per-message Python overhead, byte-exact sizes.

YGM applications that move millions of tiny messages (degree counting,
label updates, SpMV partial products) declare a record spec once and then
use the mailbox's ``send_batch`` API.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

import numpy as np

FieldSpec = Sequence[Tuple[str, Union[str, np.dtype]]]


class RecordSpec:
    """A named fixed-width message layout backed by a structured dtype.

    Example
    -------
    >>> spec = RecordSpec("labels", [("vertex", "u8"), ("label", "u8")])
    >>> batch = spec.empty(3)
    >>> batch["vertex"] = [5, 6, 7]
    >>> spec.itemsize
    16
    """

    def __init__(self, name: str, fields: FieldSpec):
        self.name = name
        self.dtype = np.dtype(list(fields))
        if self.dtype.hasobject:
            raise ValueError("record specs must be fixed-width (no object fields)")

    @property
    def itemsize(self) -> int:
        """Bytes per record on the wire."""
        return self.dtype.itemsize

    @property
    def field_names(self) -> Tuple[str, ...]:
        return self.dtype.names

    def empty(self, n: int) -> np.ndarray:
        """An uninitialised batch of ``n`` records."""
        return np.empty(n, dtype=self.dtype)

    def zeros(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=self.dtype)

    def build(self, **columns: np.ndarray) -> np.ndarray:
        """Assemble a batch from per-field column arrays.

        All columns must have the same length; missing fields raise.
        """
        names = set(self.field_names)
        if set(columns) != names:
            raise ValueError(
                f"record {self.name!r} needs fields {sorted(names)}, "
                f"got {sorted(columns)}"
            )
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {lengths}")
        out = self.empty(lengths.pop())
        for field, col in columns.items():
            out[field] = col
        return out

    def nbytes(self, batch: np.ndarray) -> int:
        """Wire size of a batch of records."""
        return batch.size * self.itemsize

    def validate(self, batch: np.ndarray) -> np.ndarray:
        if batch.dtype != self.dtype:
            raise TypeError(
                f"batch dtype {batch.dtype} does not match record "
                f"{self.name!r} dtype {self.dtype}"
            )
        return batch

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RecordSpec)
            and other.name == self.name
            and other.dtype == self.dtype
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dtype))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecordSpec({self.name!r}, itemsize={self.itemsize})"
