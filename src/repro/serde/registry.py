"""Registration of user types with the serializer.

Mirrors cereal's user-type support: a type is registered once (with a
stable integer id) together with functions that convert instances to and
from serialisable *state*.  Dataclasses can be registered with no
converter functions at all.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Type


@dataclass(frozen=True)
class RegistryEntry:
    type_id: int
    cls: Type
    to_state: Callable[[Any], Any]
    from_state: Callable[[Any], Any]


_BY_TYPE: Dict[Type, RegistryEntry] = {}
_BY_ID: Dict[int, RegistryEntry] = {}


def register(
    cls: Type,
    type_id: int,
    to_state: Optional[Callable[[Any], Any]] = None,
    from_state: Optional[Callable[[Any], Any]] = None,
) -> Type:
    """Register ``cls`` for serialization under ``type_id``.

    For dataclasses the converters default to field-tuple round-tripping.
    Registering the same (cls, type_id) pair again is a no-op; conflicting
    registrations raise ``ValueError``.

    Can be used as a decorator factory::

        @serde.registered(7)
        @dataclass
        class Update:
            vertex: int
            label: int
    """
    if to_state is None or from_state is None:
        if not dataclasses.is_dataclass(cls):
            raise ValueError(
                f"{cls.__name__}: converters are required for non-dataclasses"
            )
        fields = [f.name for f in dataclasses.fields(cls)]
        to_state = to_state or (
            lambda obj, _fields=tuple(fields): tuple(
                getattr(obj, name) for name in _fields
            )
        )
        from_state = from_state or (lambda state, _cls=cls: _cls(*state))
    existing = _BY_ID.get(type_id)
    if existing is not None:
        if existing.cls is cls:
            return cls
        raise ValueError(
            f"type id {type_id} already registered for {existing.cls.__name__}"
        )
    if cls in _BY_TYPE:
        raise ValueError(
            f"{cls.__name__} already registered with id {_BY_TYPE[cls].type_id}"
        )
    entry = RegistryEntry(type_id, cls, to_state, from_state)
    _BY_TYPE[cls] = entry
    _BY_ID[type_id] = entry
    return cls


def registered(type_id: int) -> Callable[[Type], Type]:
    """Decorator form of :func:`register` for dataclasses."""

    def deco(cls: Type) -> Type:
        return register(cls, type_id)

    return deco


def lookup_by_type(cls: Type) -> Optional[RegistryEntry]:
    return _BY_TYPE.get(cls)


def lookup_by_id(type_id: int) -> Optional[RegistryEntry]:
    return _BY_ID.get(type_id)


def clear_registry() -> None:
    """Remove all registrations (test isolation helper)."""
    _BY_TYPE.clear()
    _BY_ID.clear()
