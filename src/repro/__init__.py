"""repro -- a full reproduction of "You've Got Mail (YGM): Building
Missing Asynchronous Communication Primitives" (Priest, Steil, Sanders,
Pearce; 2019) on a simulated HPC substrate.

Layers (bottom up):

* :mod:`repro.sim` -- deterministic discrete-event simulation kernel.
* :mod:`repro.machine` -- N x C machine model with a LogGP-style network
  (eager/rendezvous protocol switch) and per-node NIC contention.
* :mod:`repro.mpi` -- simulated MPI: p2p matching, collectives, comms.
* :mod:`repro.serde` -- variable-length message serialization (cereal
  substitute) + fixed-record fast path.
* :mod:`repro.core` -- **YGM itself**: mailboxes, the NoRoute /
  NodeLocal / NodeRemote / NLNR routing schemes, coalescing, asynchronous
  broadcast, termination detection.
* :mod:`repro.graph`, :mod:`repro.linalg` -- graph generators, delegate
  partitioning, distributed CSC / SpMV substrate.
* :mod:`repro.apps` -- the paper's applications (degree counting,
  connected components, SpMV).
* :mod:`repro.baselines` -- CombBLAS-like 2D SpMV and BSP alltoallv.
* :mod:`repro.bench` -- the per-figure experiment harness.

Quick start::

    from repro import YgmWorld
    from repro.machine import bench_machine

    def rank_main(ctx):
        hits = []
        mb = ctx.mailbox(recv=hits.append)
        yield from mb.send((ctx.rank + 1) % ctx.nranks, f"hi from {ctx.rank}")
        yield from mb.wait_empty()
        return hits

    result = YgmWorld(bench_machine(nodes=2), scheme="nlnr").run(rank_main)
"""

from .core import (
    Mailbox,
    MailboxConfig,
    MailboxStats,
    PAPER_SCHEMES,
    RoutingScheme,
    SCHEMES,
    YgmContext,
    YgmResult,
    YgmWorld,
    get_scheme,
)
from .machine import MachineConfig, NetworkModel, bench_machine, quartz_like, small
from .serde import RecordSpec

__version__ = "1.0.0"

__all__ = [
    "Mailbox",
    "MailboxConfig",
    "MailboxStats",
    "MachineConfig",
    "NetworkModel",
    "PAPER_SCHEMES",
    "RecordSpec",
    "RoutingScheme",
    "SCHEMES",
    "YgmContext",
    "YgmResult",
    "YgmWorld",
    "bench_machine",
    "get_scheme",
    "quartz_like",
    "small",
    "__version__",
]
