#!/usr/bin/env python
"""HipMer-style distributed k-mer counting over YGM.

Section II of the paper argues HipMer's frequent-k-mer identification
maps onto YGM's mailboxes; this example runs it: synthetic reads with a
repetitive-region skew are sheared into 2-bit-packed k-mers, hashed to
owning ranks through the vectorized send path, counted, and the frequent
set (the hubs of the de Bruijn graph) is extracted.

Usage: ``python examples/kmer_counting.py``.
"""

import numpy as np

from repro import YgmWorld
from repro.apps import make_kmer_counting, merge_counts, unpack_kmer
from repro.machine import bench_machine


def main():
    nodes, cores, k = 4, 4, 12
    n_reads, read_len = 200, 80
    world = YgmWorld(
        bench_machine(nodes, cores_per_node=cores), scheme="nlnr", seed=7
    )
    result = world.run(
        make_kmer_counting(
            n_reads, read_len, k, frequent_threshold=4, skew=0.7
        )
    )
    counts = merge_counts(result.values)
    frequent = sorted(
        ((c, km) for _, freq in result.values for km in freq
         for c in [counts[km]]),
        reverse=True,
    )
    total = sum(counts.values())
    print(f"{nodes}x{cores} cores, k={k}: {total} k-mers sheared from "
          f"{n_reads * nodes * cores} reads, {len(counts)} distinct")
    print(f"simulated time: {result.elapsed * 1e3:.3f} ms; "
          f"{result.mailbox_stats.remote_packets_sent} remote packets\n")
    print("top frequent k-mers (count > 4):")
    for c, km in frequent[:8]:
        print(f"  {unpack_kmer(int(km), k)}  x{c}")
    assert frequent, "skewed reads should produce frequent k-mers"
    print("\nOwnership is hash-partitioned and disjoint; counts verified "
          "in tests/apps/test_kmer_count.py against a direct recount.")


if __name__ == "__main__":
    main()
