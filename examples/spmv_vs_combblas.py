#!/usr/bin/env python
"""SpMV shoot-out: YGM with delegates vs a CombBLAS-style 2D baseline.

Builds a skewed RMAT matrix, runs the paper's Algorithm 2 (1D column
partition + delegates + asynchronous accumulation messages) and the 2D
allgather/reduce-scatter baseline on the same simulated machine, checks
both against scipy, and reports timings -- a single-configuration slice
of the paper's Fig 8a.

Usage: ``python examples/spmv_vs_combblas.py [nodes] [cores]``.
"""

import sys

import numpy as np
import scipy.sparse as sp

from repro import YgmWorld
from repro.baselines import (
    choose_grid,
    gather_combblas_y,
    make_combblas_spmv,
    partition_combblas_problem,
)
from repro.graph import build_delegates, rmat_edges, scaled_delegate_threshold
from repro.linalg import gather_global_y, make_spmv, partition_spmv_problem
from repro.machine import bench_machine
from repro.mpi import World


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    cores = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    nranks = nodes * cores
    scale, edge_factor = 12, 16
    n = 1 << scale
    nnz = edge_factor * n

    rng = np.random.default_rng(0)
    rows, cols = rmat_edges(scale, nnz, rng)
    vals = rng.standard_normal(nnz)
    x = rng.standard_normal(n)
    expected = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr() @ x

    threshold = scaled_delegate_threshold(scale, nnz, 0.57, 0.19)
    delegates = build_delegates(rows, cols, n, threshold)
    print(f"matrix: 2^{scale} x 2^{scale}, {nnz} nonzeros (RMAT skewed)")
    print(f"machine: {nodes} nodes x {cores} cores")
    print(f"delegates: {delegates.count} (degree > {threshold:.0f})\n")

    machine = bench_machine(nodes, cores_per_node=cores)

    # --- YGM (Algorithm 2), two routing schemes ---
    for scheme in ("node_remote", "nlnr"):
        problems = [
            partition_spmv_problem(r, nranks, n, rows, cols, vals, x, delegates)
            for r in range(nranks)
        ]
        world = YgmWorld(machine, scheme=scheme, mailbox_capacity=2**12)
        res = world.run(make_spmv(problems))
        y = gather_global_y(res.values, n, nranks)
        assert np.allclose(y, expected), f"ygm/{scheme}: wrong result!"
        msgs = res.mailbox_stats.app_messages_sent
        print(f"ygm/{scheme:<12} {res.elapsed:.6f} s   "
              f"({msgs} messages, {nnz - msgs} delegate-local accumulations)")

    # --- CombBLAS-style 2D baseline ---
    problems_cb = partition_combblas_problem(nranks, n, rows, cols, vals, x)
    world_cb = World(machine)
    res_cb = world_cb.run(make_combblas_spmv(problems_cb))
    pr, pc = choose_grid(nranks)
    y_cb = gather_combblas_y(res_cb.values, n, pr, pc)
    assert np.allclose(y_cb, expected), "combblas2d: wrong result!"
    print(f"combblas2d ({pr}x{pc})  {res_cb.elapsed:.6f} s   "
          "(allgather + local SpMV + reduce-scatter)")

    print("\nAll three implementations match scipy. The paper's Fig 8a "
          "sweep (python -m repro.bench --fig 8a --full) shows where YGM "
          "overtakes the 2D baseline as nodes grow.")


if __name__ == "__main__":
    main()
