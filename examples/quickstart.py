#!/usr/bin/env python
"""Quickstart: the YGM mailbox in five minutes.

Runs a tiny simulated machine (4 nodes x 4 cores) and demonstrates the
whole public API surface:

* creating a mailbox with a receive callback,
* asynchronous point-to-point sends (with routing + coalescing under the
  hood),
* an asynchronous broadcast,
* replying from inside a receive callback (data-dependent messaging),
* ``wait_empty`` termination detection,
* reading the communication statistics a run produces.

Usage: ``python examples/quickstart.py [scheme]`` (default: nlnr).
"""

import sys

from repro import YgmWorld
from repro.machine import bench_machine


def rank_main(ctx):
    """The per-rank program.  It is a generator: every potentially
    blocking call is driven with ``yield from``."""
    inbox = []

    def on_message(msg):
        inbox.append(msg)
        kind, sender = msg
        if kind == "ping":
            # Replying from a callback uses the nonblocking post().
            mailbox.post(sender, ("pong", ctx.rank))

    def on_broadcast(msg):
        inbox.append(("bcast", msg))

    mailbox = ctx.mailbox(recv=on_message, recv_bcast=on_broadcast, capacity=64)

    # Every rank pings its neighbour ring; rank 0 also broadcasts.
    neighbour = (ctx.rank + 1) % ctx.nranks
    yield from mailbox.send(neighbour, ("ping", ctx.rank))
    if ctx.rank == 0:
        yield from mailbox.send_bcast(f"hello from node {ctx.node}, core {ctx.core}")

    # Block until the whole job is quiescent -- including the pongs our
    # pings triggered on other ranks.
    yield from mailbox.wait_empty()
    return sorted(inbox, key=repr)


def main():
    scheme = sys.argv[1] if len(sys.argv) > 1 else "nlnr"
    world = YgmWorld(bench_machine(nodes=4, cores_per_node=4), scheme=scheme, seed=0)
    result = world.run(rank_main)

    print(f"routing scheme : {scheme}")
    print(f"simulated time : {result.elapsed * 1e6:.1f} us")
    print(f"rank 0 inbox   : {result.values[0]}")
    print(f"rank 5 inbox   : {result.values[5]}")
    stats = result.mailbox_stats
    print(f"messages       : {stats.app_messages_sent} sent, "
          f"{stats.app_messages_delivered} delivered")
    print(f"broadcasts     : {stats.bcasts_initiated} initiated, "
          f"{stats.bcast_deliveries} deliveries")
    print(f"remote packets : {stats.remote_packets_sent} "
          f"({stats.remote_bytes_sent} bytes)")
    print(f"local packets  : {stats.local_packets_sent} "
          f"({stats.local_bytes_sent} bytes)")

    # Sanity: everyone got exactly one ping, one pong, one broadcast
    # (except rank 0, which broadcast and gets no copy of its own).
    for rank, inbox in enumerate(result.values):
        pings = [m for m in inbox if m[0] == "ping"]
        pongs = [m for m in inbox if m[0] == "pong"]
        bcasts = [m for m in inbox if m[0] == "bcast"]
        assert len(pings) == 1 and len(pongs) == 1
        assert len(bcasts) == (0 if rank == 0 else 1)
    print("OK: ring pings, pongs and broadcast all delivered.")


if __name__ == "__main__":
    main()
