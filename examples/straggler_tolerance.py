#!/usr/bin/env python
"""The paper's motivation, demonstrated: a straggling rank under BSP vs YGM.

One rank is made artificially slow.  Under the bulk-synchronous baseline
every rank idles at every superstep waiting for it; under YGM the other
ranks queue, flush and finish their own work early -- their cores are
free -- and only the global drain (wait_empty) observes the straggler.

Usage: ``python examples/straggler_tolerance.py``.
"""

import numpy as np

from repro.bench.ablations import run_straggler_comparison


def main():
    table = run_straggler_comparison(
        nodes=4, cores=4, edges_per_rank=2**12, straggler_delay=5e-4
    )
    table.print()
    work = table.series("impl", "avg_work_done_others")
    speedup = work["bsp_alltoallv"] / work["ygm/node_remote"]
    print(
        f"\nNon-straggler ranks get their cores back {speedup:.1f}x earlier "
        "under YGM than under the BSP exchange -- the utilisation argument "
        "of the paper's introduction."
    )


if __name__ == "__main__":
    main()
