#!/usr/bin/env python
"""Connected components on a scale-free graph with vertex delegates.

Reproduces the paper's Section V-B application: min-label propagation on
an RMAT graph whose hubs are handled as *delegates* -- replicated on all
ranks, synchronised after each pass with YGM's asynchronous broadcasts.
Verifies the result against networkx and shows how delegates change the
message/broadcast mix.

Usage: ``python examples/connected_components.py``.
"""

import networkx as nx
import numpy as np

from repro import YgmWorld
from repro.apps import gather_global_labels, make_connected_components
from repro.graph import rmat_stream
from repro.machine import bench_machine


def networkx_labels(stream, nranks):
    g = nx.Graph()
    g.add_nodes_from(range(stream.num_vertices))
    for rank in range(nranks):
        u, v = stream.all_edges(rank)
        g.add_edges_from(zip(u.tolist(), v.tolist()))
    labels = np.arange(stream.num_vertices, dtype=np.int64)
    for comp in nx.connected_components(g):
        labels[list(comp)] = min(comp)
    return labels


def main():
    nodes, cores = 4, 4
    nranks = nodes * cores
    stream = rmat_stream(scale=10, edges_per_rank=2**10, seed=42)
    expected = networkx_labels(stream, nranks)
    ncomps = len(np.unique(expected))
    print(f"RMAT graph: 2^10 vertices, {2**10 * nranks} edges, "
          f"{ncomps} connected components\n")

    for threshold, label in ((None, "no delegates"), (60.0, "delegates > deg 60")):
        world = YgmWorld(
            bench_machine(nodes, cores_per_node=cores), scheme="nlnr", seed=0
        )
        result = world.run(
            make_connected_components(stream, delegate_threshold=threshold)
        )
        labels = gather_global_labels(result.values, stream.num_vertices, nranks)
        assert np.array_equal(labels, expected), f"{label}: wrong labels!"
        r0 = result.values[0]
        s = result.mailbox_stats
        print(f"[{label}]")
        print(f"  simulated seconds : {result.elapsed:.6f}")
        print(f"  passes            : {r0.passes}")
        print(f"  delegates         : {r0.delegate_count}")
        print(f"  label messages    : {s.app_messages_sent}")
        print(f"  async broadcasts  : {s.bcasts_initiated} "
              f"({s.bcast_deliveries} deliveries)")
        print()
    print("Both variants match networkx. Delegates trade point-to-point "
          "hub traffic for broadcast synchronisation (paper Section V-B).")


if __name__ == "__main__":
    main()
