#!/usr/bin/env python
"""Quartz-scale parallel DES demo: 1024 nodes, ten million messages.

The ROADMAP's scale goal for the parallel engine: simulate a
Quartz-class machine (1024+ nodes) pushing >=10^7 messages, partitioned
across worker processes, and get *exactly* the serial answer back.
The workload is a halo exchange -- every rank streams messages to a
small neighbourhood, the spatially-decomposed pattern PDES partitioning
is built for -- so almost all traffic is partition-private and the
conservative windows stay wide.

Runs the serial kernel first, then the partitioned engine, verifies
bit-identical results and statistics (`repro.pdes.assert_equivalent`),
and prints both wall clocks with the engine's window diagnostics.

Usage::

    python examples/pdes_quartz_scale.py [nodes] [msgs_per_rank] [workers]

Defaults: 1024 nodes x 1 core, 10000 messages/rank (10.24M total),
2 workers.  Expect a few minutes end to end on one core; pass smaller
numbers for a quick look (e.g. ``128 1000 2``).
"""

import sys
import time

from repro import YgmWorld
from repro.machine import bench_machine
from repro.pdes import PdesWorld, assert_equivalent

#: Each rank talks to ranks +-1 and +-2 -- a 1-D stencil halo.
HALO_WIDTH = 2


def make_halo(msgs_per_rank):
    def rank_main(ctx):
        received = 0

        def recv(m):
            nonlocal received
            received += 1

        mb = ctx.mailbox(recv=recv)
        n = ctx.nranks
        for i in range(msgs_per_rank):
            d = (i % (2 * HALO_WIDTH)) - HALO_WIDTH
            if d >= 0:
                d += 1
            yield from mb.send((ctx.rank + d) % n, (ctx.rank, i))
        yield from mb.wait_empty()
        return received

    return rank_main


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    msgs_per_rank = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 2
    total = nodes * msgs_per_rank
    machine = bench_machine(nodes, cores_per_node=1)
    rank_main = make_halo(msgs_per_rank)
    print(f"machine: {nodes} nodes x 1 core; halo exchange, "
          f"{msgs_per_rank} msgs/rank = {total:,} messages total\n")

    t0 = time.perf_counter()
    serial = YgmWorld(machine, scheme="nlnr", seed=0).run(rank_main)
    t_serial = time.perf_counter() - t0
    print(f"serial:      {t_serial:8.1f} s wall "
          f"({total / t_serial:,.0f} msg/s), sim elapsed "
          f"{serial.elapsed:.6f} s")

    engine = PdesWorld(machine, scheme="nlnr", seed=0, workers=workers)
    t0 = time.perf_counter()
    parallel = engine.run(rank_main)
    t_par = time.perf_counter() - t0
    print(f"pdes (w={workers}):  {t_par:8.1f} s wall "
          f"({total / t_par:,.0f} msg/s), sim elapsed "
          f"{parallel.elapsed:.6f} s")
    print(f"  {engine.rounds} window rounds, "
          f"{engine.exported_packets} cross-partition packets, "
          f"{engine.spilled_batches} ring spills, "
          f"max window batch K={engine.max_window_batch}")

    assert_equivalent(parallel, serial)
    assert parallel.values == serial.values
    assert sum(parallel.values) == total
    print("\nPartitioned run is bit-identical to serial: same values, "
          "finish times, elapsed, transport counters and statistics.")


if __name__ == "__main__":
    main()
