#!/usr/bin/env python
"""Degree counting (paper Algorithm 1) across all four routing schemes.

Streams a uniformly-sampled edge list through YGM mailboxes, counts
vertex degrees at round-robin owners, verifies against a direct recount,
and compares the routing schemes' simulated wall-clock and coalescing
quality -- a miniature of the paper's Fig 6.

Usage: ``python examples/degree_counting.py [nodes] [cores]``.
"""

import sys

import numpy as np

from repro import YgmWorld
from repro.apps import gather_global_degrees, make_degree_counting
from repro.bench.harness import schemes_for
from repro.graph import er_stream
from repro.machine import bench_machine


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    cores = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    nranks = nodes * cores
    edges_per_rank = 2**12
    num_vertices = 1024 * nranks

    stream = er_stream(num_vertices=num_vertices, edges_per_rank=edges_per_rank, seed=7)

    # Ground truth by recounting the full stream directly.
    expected = np.zeros(num_vertices, dtype=np.int64)
    for rank in range(nranks):
        u, v = stream.all_edges(rank)
        expected += np.bincount(u, minlength=num_vertices)
        expected += np.bincount(v, minlength=num_vertices)

    print(f"machine: {nodes} nodes x {cores} cores; "
          f"{edges_per_rank * nranks} edges over {num_vertices} vertices\n")
    print(f"{'scheme':<14}{'sim seconds':>14}{'avg remote pkt':>16}{'remote pkts':>13}")
    for scheme in schemes_for(nodes, cores):
        world = YgmWorld(
            bench_machine(nodes, cores_per_node=cores),
            scheme=scheme,
            mailbox_capacity=2**12,
        )
        result = world.run(make_degree_counting(stream, batch_size=2**12))
        degrees = gather_global_degrees(result.values, num_vertices, nranks)
        assert np.array_equal(degrees, expected), f"{scheme}: wrong degrees!"
        s = result.mailbox_stats
        print(f"{scheme:<14}{result.elapsed:>14.6f}"
              f"{s.avg_remote_packet_bytes:>14.0f} B{s.remote_packets_sent:>13}")
    print("\nAll schemes produced identical, correct degree counts.")
    print("Note how the average remote packet grows NoRoute < NodeLocal <= "
          "NodeRemote < NLNR (paper Section III-E).")


if __name__ == "__main__":
    main()
