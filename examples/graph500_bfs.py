#!/usr/bin/env python
"""Graph500-style BFS through YGM (the paper's motivating workload).

The introduction notes YGM carried LLNL's Graph500 submission on Sierra
(BFS on a 2^42-vertex graph over 2048 nodes).  This example runs the
same shape at laptop scale: an RMAT (Graph500 parameters) graph, several
BFS roots, asynchronous frontier expansion through the mailboxes, and a
TEPS-style throughput summary per routing scheme.

Usage: ``python examples/graph500_bfs.py``.
"""

import numpy as np

from repro import YgmWorld
from repro.apps import UNREACHED, gather_global_distances, make_bfs
from repro.graph import rmat_stream
from repro.machine import bench_machine


def main():
    nodes, cores = 4, 4
    nranks = nodes * cores
    scale, edges_per_rank = 11, 2**10
    stream = rmat_stream(scale=scale, edges_per_rank=edges_per_rank, seed=123)
    total_edges = edges_per_rank * nranks
    roots = [0, 3, 17]  # vertex 0 is the biggest RMAT hub

    print(f"Graph500-style BFS: scale {scale} RMAT, {total_edges} edges, "
          f"{nodes}x{cores} cores\n")
    print(f"{'scheme':<13}{'root':>6}{'reached':>9}{'max hop':>9}"
          f"{'sim seconds':>13}{'MTEPS(sim)':>12}")
    for scheme in ("node_remote", "nlnr"):
        for root in roots:
            world = YgmWorld(
                bench_machine(nodes, cores_per_node=cores),
                scheme=scheme,
                mailbox_capacity=2**12,
            )
            result = world.run(make_bfs(stream, source=root))
            dist = gather_global_distances(result.values, 1 << scale, nranks)
            reached = int((dist != UNREACHED).sum())
            max_hop = int(dist[dist != UNREACHED].max())
            teps = total_edges / result.elapsed / 1e6
            print(f"{scheme:<13}{root:>6}{reached:>9}{max_hop:>9}"
                  f"{result.elapsed:>13.6f}{teps:>12.1f}")
    print("\nBFS frontiers expand asynchronously: receive callbacks post the "
          "next wavefront, and one wait_empty drains the whole traversal.")


if __name__ == "__main__":
    main()
