#!/usr/bin/env python
"""Hot-path lint: no per-message entry objects in the columnar fast path.

PR 6 moved the injection -> coalescing -> packet -> delivery pipeline to
struct-of-arrays columns (``P2PColumns``); per-message ``P2PEntry`` /
``BcastEntry`` objects are only allowed at *handler boundaries* -- the
object-path fallback in ``Mailbox.post``, broadcast injection in
``Mailbox.post_bcast``, and broadcast re-forwarding in
``Mailbox._handle_packet``.  Anywhere else in the mailbox or coalescing
layers, constructing one silently reintroduces the per-message
allocation cost the columnar refactor removed -- results stay correct,
so only this lint catches the regression.

Usage::

    python tools/hotpath_lint.py [--root PATH]

Exits 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Entry classes that must not be built per-message on the fast path.
FORBIDDEN = {"P2PEntry", "BcastEntry"}

#: Files that make up the batch fast path, relative to the repo root.
HOT_FILES = (
    "src/repro/core/mailbox.py",
    "src/repro/core/coalescing.py",
)

#: ``(file, qualname)`` sites where per-message objects are legitimate:
#: the handler-boundary fallbacks of the object path.
ALLOWED_SITES = {
    ("src/repro/core/mailbox.py", "Mailbox.post"),
    ("src/repro/core/mailbox.py", "Mailbox.post_bcast"),
    ("src/repro/core/mailbox.py", "Mailbox._handle_packet"),
}


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class _HotPathVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.stack: list[str] = []
        self.violations: list[tuple[str, int, str, str]] = []

    def _scoped(self, node) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_ClassDef = _scoped
    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in FORBIDDEN:
            qualname = ".".join(self.stack) or "<module>"
            if (self.relpath, qualname) not in ALLOWED_SITES:
                self.violations.append(
                    (self.relpath, node.lineno, qualname, name)
                )
        self.generic_visit(node)


def lint_file(path: Path, relpath: str) -> list[tuple[str, int, str, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = _HotPathVisitor(relpath)
    visitor.visit(tree)
    return visitor.violations


def lint(root: Path) -> list[tuple[str, int, str, str]]:
    violations = []
    for rel in HOT_FILES:
        path = root / rel
        if path.exists():
            violations.extend(lint_file(path, rel))
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (default: this script's parent's parent)",
    )
    args = parser.parse_args(argv)
    violations = lint(Path(args.root))
    for relpath, lineno, qualname, name in violations:
        print(
            f"{relpath}:{lineno}: {name}() constructed in {qualname} -- "
            f"the columnar fast path must not allocate per-message entry "
            f"objects (allowed only at handler boundaries: "
            f"{', '.join(sorted(q for _, q in ALLOWED_SITES))})",
            file=sys.stderr,
        )
    if not violations:
        print(f"hotpath lint: OK ({len(HOT_FILES)} files)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
