#!/usr/bin/env python
"""Hot-path lint: no per-message entry objects in the columnar fast path.

PR 6 moved the injection -> coalescing -> packet -> delivery pipeline to
struct-of-arrays columns (``P2PColumns``); per-message ``P2PEntry`` /
``BcastEntry`` objects are only allowed at *handler boundaries* -- the
object-path fallback in ``Mailbox.post``, broadcast injection in
``Mailbox.post_bcast``, and broadcast re-forwarding in
``Mailbox._handle_packet``.  Anywhere else in the mailbox or coalescing
layers, constructing one silently reintroduces the per-message
allocation cost the columnar refactor removed -- results stay correct,
so only this lint catches the regression.

PR 8 added a second rule for the PDES export path: the shared-memory
ring transport (``repro.pdes.rings`` / ``wire`` / ``worker`` /
``engine``) moves export batches through the serde-based columnar wire
codec, and ``pickle`` must never reappear there -- no ``import pickle``
and no ``pickle.dumps`` / ``pickle.loads`` calls.  (The legacy pipe
transport pickles *implicitly* through ``Connection.send``, which is
fine; an explicit ``pickle`` use in these modules means someone put a
Python-object serializer back on the hot path.)  Results stay
bit-identical either way, so again only this lint catches it.

PR 9 added a third rule for the in-network combining pass
(``repro.core.routing.combiner``): the group-by must stay vectorized --
one ``lexsort``, one adjacent-equality scan, one ``reduceat`` per
reduced field.  The only Python loops allowed there iterate over the
combiner's *field lists* (``key_fields`` / ``reduce_fields``, a handful
of names), never over records; a ``for``/``while``/comprehension over
anything else is a per-record loop sneaking back onto the re-bin path.

PR 10 added a fourth rule for the ring fast path: the flight recorder
(``repro.pdes.flight``) records per *window*, never per ring operation,
so ``SpscRing.try_push`` / ``begin_pop`` / ``commit_pop`` must stay
free of clock reads and recorder calls -- no ``perf_counter`` /
``monotonic`` / ``time`` and no ``span`` / ``instant`` / ``record`` /
``counter`` / ``progress``.  The always-on :class:`RingStats` integer
bumps are the only telemetry allowed there; a timing call on that path
taxes every batch whether or not anyone is recording.

Usage::

    python tools/hotpath_lint.py [--root PATH]

Exits 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Entry classes that must not be built per-message on the fast path.
FORBIDDEN = {"P2PEntry", "BcastEntry"}

#: Files that make up the batch fast path, relative to the repo root.
HOT_FILES = (
    "src/repro/core/mailbox.py",
    "src/repro/core/coalescing.py",
)

#: ``(file, qualname)`` sites where per-message objects are legitimate:
#: the handler-boundary fallbacks of the object path.
ALLOWED_SITES = {
    ("src/repro/core/mailbox.py", "Mailbox.post"),
    ("src/repro/core/mailbox.py", "Mailbox.post_bcast"),
    ("src/repro/core/mailbox.py", "Mailbox._handle_packet"),
}

#: PDES export-path files where ``pickle`` must never appear (the ring
#: transport serializes through :mod:`repro.pdes.wire` instead).
PICKLE_FREE_FILES = (
    "src/repro/pdes/rings.py",
    "src/repro/pdes/wire.py",
    "src/repro/pdes/worker.py",
    "src/repro/pdes/engine.py",
)

#: Files whose loops may only iterate per-*field*, never per-record.
VECTORIZED_FILES = ("src/repro/core/routing/combiner.py",)

#: Ring fast-path file and the methods that must stay clock/recorder-free.
RING_FILES = ("src/repro/pdes/rings.py",)
RING_FAST_METHODS = {
    "SpscRing.try_push",
    "SpscRing.begin_pop",
    "SpscRing.commit_pop",
}

#: Calls forbidden inside the ring fast path: clock reads and flight/
#: tracer recording verbs.  Matched by callee name, so both ``time()``
#: and ``time.monotonic()`` trip it.
RING_FORBIDDEN_CALLS = {
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "thread_time",
    "monotonic",
    "monotonic_ns",
    "time",
    "time_ns",
    "clock_gettime",
    "span",
    "instant",
    "complete",
    "counter",
    "record",
    "progress",
}


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class _HotPathVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.stack: list[str] = []
        self.violations: list[tuple[str, int, str, str]] = []

    def _scoped(self, node) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_ClassDef = _scoped
    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in FORBIDDEN:
            qualname = ".".join(self.stack) or "<module>"
            if (self.relpath, qualname) not in ALLOWED_SITES:
                self.violations.append(
                    (self.relpath, node.lineno, qualname, name)
                )
        self.generic_visit(node)


class _PickleVisitor(ast.NodeVisitor):
    """Flags any route to the pickle serializer: imports and attribute use."""

    _MODULES = {"pickle", "cPickle", "_pickle"}

    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.stack: list[str] = []
        self.violations: list[tuple[str, int, str, str]] = []

    def _scoped(self, node) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_ClassDef = _scoped
    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped

    def _flag(self, node, what: str) -> None:
        qualname = ".".join(self.stack) or "<module>"
        self.violations.append((self.relpath, node.lineno, qualname, what))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] in self._MODULES:
                self._flag(node, f"import {alias.name}")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] in self._MODULES:
            self._flag(node, f"from {node.module} import ...")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id in self._MODULES:
            self._flag(node, f"{node.value.id}.{node.attr}")
        self.generic_visit(node)


class _VectorizedVisitor(ast.NodeVisitor):
    """Flags per-record Python loops in the combining pass.

    A loop's iterable is fine when it bottoms out in one of the
    combiner's field lists (``key_fields`` / ``reduce_fields``), possibly
    through a dict view (``.items()``/``.keys()``/``.values()``) or an
    order-only wrapper (``reversed``/``sorted``/``enumerate``/``tuple``/
    ``list``).  Everything else -- and any ``while`` -- is per-record.
    """

    _FIELD_ATTRS = {"key_fields", "reduce_fields"}
    _DICT_VIEWS = {"items", "keys", "values"}
    _WRAPPERS = {"reversed", "sorted", "enumerate", "tuple", "list"}

    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.stack: list[str] = []
        self.violations: list[tuple[str, int, str, str]] = []

    def _scoped(self, node) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_ClassDef = _scoped
    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped

    def _iter_allowed(self, node) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in self._FIELD_ATTRS
        if isinstance(node, ast.Name):
            return node.id in self._FIELD_ATTRS
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._DICT_VIEWS:
                return self._iter_allowed(func.value)
            if isinstance(func, ast.Name) and func.id in self._WRAPPERS and node.args:
                return self._iter_allowed(node.args[0])
        return False

    def _flag(self, node, what: str) -> None:
        qualname = ".".join(self.stack) or "<module>"
        self.violations.append((self.relpath, node.lineno, qualname, what))

    def _check_loop(self, node, kind: str) -> None:
        if not self._iter_allowed(node.iter):
            self._flag(node, f"per-record {kind}")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_loop(node, "for loop")

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_loop(node, "for loop")

    def visit_While(self, node: ast.While) -> None:
        self._flag(node, "per-record while loop")
        self.generic_visit(node)

    def _check_comp(self, node, kind: str) -> None:
        for gen in node.generators:
            if not self._iter_allowed(gen.iter):
                self._flag(node, f"per-record {kind}")
                break
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comp(node, "comprehension")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comp(node, "comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comp(node, "comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comp(node, "comprehension")


class _RingFastPathVisitor(ast.NodeVisitor):
    """Flags clock reads and recorder calls inside the ring fast path."""

    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.stack: list[str] = []
        self.violations: list[tuple[str, int, str, str]] = []

    def _scoped(self, node) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_ClassDef = _scoped
    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in RING_FORBIDDEN_CALLS:
            qualname = ".".join(self.stack) or "<module>"
            if qualname in RING_FAST_METHODS:
                self.violations.append(
                    (self.relpath, node.lineno, qualname, f"ring-hot {name}")
                )
        self.generic_visit(node)


def lint_file(path: Path, relpath: str) -> list[tuple[str, int, str, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = _HotPathVisitor(relpath)
    visitor.visit(tree)
    return visitor.violations


def lint_pickle_free(path: Path, relpath: str) -> list[tuple[str, int, str, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = _PickleVisitor(relpath)
    visitor.visit(tree)
    return visitor.violations


def lint_vectorized(path: Path, relpath: str) -> list[tuple[str, int, str, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = _VectorizedVisitor(relpath)
    visitor.visit(tree)
    return visitor.violations


def lint_ring_fast_path(
    path: Path, relpath: str
) -> list[tuple[str, int, str, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = _RingFastPathVisitor(relpath)
    visitor.visit(tree)
    return visitor.violations


def lint(root: Path) -> list[tuple[str, int, str, str]]:
    violations = []
    for rel in HOT_FILES:
        path = root / rel
        if path.exists():
            violations.extend(lint_file(path, rel))
    for rel in PICKLE_FREE_FILES:
        path = root / rel
        if path.exists():
            violations.extend(lint_pickle_free(path, rel))
    for rel in VECTORIZED_FILES:
        path = root / rel
        if path.exists():
            violations.extend(lint_vectorized(path, rel))
    for rel in RING_FILES:
        path = root / rel
        if path.exists():
            violations.extend(lint_ring_fast_path(path, rel))
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (default: this script's parent's parent)",
    )
    args = parser.parse_args(argv)
    violations = lint(Path(args.root))
    for relpath, lineno, qualname, name in violations:
        if name.startswith("per-record"):
            print(
                f"{relpath}:{lineno}: {name} in {qualname} -- the combining "
                f"pass must stay vectorized (lexsort + reduceat); Python "
                f"loops there may only iterate over the combiner's field "
                f"lists, never over records",
                file=sys.stderr,
            )
        elif name.startswith("ring-hot "):
            print(
                f"{relpath}:{lineno}: {name[len('ring-hot '):]}() called in "
                f"{qualname} -- the ring push/pop fast path must stay free "
                f"of clock reads and recorder calls (the flight recorder "
                f"times per window, outside the ring; RingStats integer "
                f"bumps are the only telemetry allowed here)",
                file=sys.stderr,
            )
        elif "pickle" in name:
            print(
                f"{relpath}:{lineno}: {name} in {qualname} -- the PDES "
                f"export path must stay pickle-free (encode through "
                f"repro.pdes.wire; the pipe fallback pickles implicitly "
                f"via Connection.send)",
                file=sys.stderr,
            )
        else:
            print(
                f"{relpath}:{lineno}: {name}() constructed in {qualname} -- "
                f"the columnar fast path must not allocate per-message entry "
                f"objects (allowed only at handler boundaries: "
                f"{', '.join(sorted(q for _, q in ALLOWED_SITES))})",
                file=sys.stderr,
            )
    if not violations:
        nfiles = (
            len(HOT_FILES) + len(PICKLE_FREE_FILES) + len(VECTORIZED_FILES)
            + len(RING_FILES)
        )
        print(f"hotpath lint: OK ({nfiles} files)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
